#include "whynot/explain/why_explanation.h"

#include <algorithm>

#include "whynot/common/algorithm.h"
#include "whynot/concepts/ls_eval.h"
#include "whynot/relational/cq_eval.h"

namespace whynot::explain {

Result<WhyInstance> MakeWhyInstance(const rel::Instance* instance,
                                    const rel::UnionQuery& query,
                                    Tuple present) {
  WHYNOT_ASSIGN_OR_RETURN(std::vector<Tuple> answers,
                          rel::Evaluate(query, *instance));
  if (query.arity() != present.size()) {
    return Status::InvalidArgument("tuple arity does not match query arity");
  }
  if (!std::binary_search(answers.begin(), answers.end(), present)) {
    return Status::InvalidArgument(
        "tuple " + TupleToString(present) +
        " is not in the answer set; ask a why-not question instead");
  }
  WhyInstance wi;
  wi.instance = instance;
  wi.answers = std::move(answers);
  wi.present = std::move(present);
  return wi;
}

namespace {

/// The counting formulations below require Ans to be duplicate-free.
/// MakeWhyInstance guarantees that (rel::Evaluate sort-dedups), but
/// WhyInstance is a plain struct that callers may fill by hand, so the
/// answer vectors are defensively sort-deduped where they are built.
std::vector<Tuple> SortedUniqueAnswers(const WhyInstance& wi) {
  std::vector<Tuple> answers = wi.answers;
  SortUnique(&answers);
  return answers;
}

/// "product ⊆ Ans" in counting form over the answer-cover kernel: the
/// product tuples are pairwise distinct and Ans is duplicate-free, so the
/// product is inside Ans iff |product| equals the number of answers whose
/// every component lies in the corresponding extension — and that number
/// is popcount(⋀_i Cover(e_i, i)), one word-parallel AND instead of a
/// scalar membership pass per (answer, position). An All extension at any
/// position makes the product infinite, hence never ⊆ the finite answer
/// set — unless some other position is empty, making the product empty
/// and vacuously inside.
///
/// ext(C1) × ... × ext(Cm) ⊆ Ans over a bound finite ontology.
bool ProductInsideAnswers(onto::BoundOntology* bound,
                          const std::vector<onto::ConceptId>& concepts,
                          ConceptAnswerCovers* covers) {
  for (onto::ConceptId c : concepts) {
    const onto::ExtSet& e = bound->Ext(c);
    if (!e.is_all() && e.size() == 0) return true;  // vacuously inside
  }
  size_t product_size = 1;
  for (onto::ConceptId c : concepts) {
    const onto::ExtSet& e = bound->Ext(c);
    if (e.is_all()) return false;
    // |product| > |Ans| can never be covered; bail before overflow.
    if (product_size > covers->num_answers() / e.size()) return false;
    product_size *= e.size();
  }
  return covers->CountCovered(concepts) == product_size;
}

/// Answers interned against the pool, sort-deduped for the counting check.
std::vector<std::vector<ValueId>> InternedUniqueAnswers(
    onto::BoundOntology* bound, const WhyInstance& wi) {
  std::vector<std::vector<ValueId>> answers;
  answers.reserve(wi.answers.size());
  for (const Tuple& t : wi.answers) {
    std::vector<ValueId> ids;
    ids.reserve(t.size());
    for (const Value& v : t) ids.push_back(bound->pool().Intern(v));
    answers.push_back(std::move(ids));
  }
  SortUnique(&answers);
  return answers;
}

}  // namespace

Result<bool> IsWhyExplanation(onto::BoundOntology* bound,
                              const WhyInstance& wi, const Explanation& e) {
  if (e.size() != wi.arity()) {
    return Status::InvalidArgument(
        "explanation arity does not match the tuple");
  }
  for (size_t i = 0; i < e.size(); ++i) {
    ValueId id = bound->pool().Intern(wi.present[i]);
    if (!bound->Ext(e[i]).Contains(id)) return false;
  }
  ConceptAnswerCovers covers(bound, InternedUniqueAnswers(bound, wi));
  return ProductInsideAnswers(bound, e, &covers);
}

Result<std::vector<Explanation>> AllMostGeneralWhyExplanations(
    onto::BoundOntology* bound, const WhyInstance& wi,
    size_t max_candidates) {
  size_t m = wi.arity();
  std::vector<std::vector<onto::ConceptId>> lists(m);
  for (size_t i = 0; i < m; ++i) {
    ValueId id = bound->pool().Intern(wi.present[i]);
    lists[i] = bound->ConceptsContaining(id);
    if (lists[i].empty()) return std::vector<Explanation>{};
  }
  ConceptAnswerCovers covers(bound, InternedUniqueAnswers(bound, wi));

  std::vector<Explanation> antichain;
  std::vector<size_t> idx(m, 0);
  Explanation current(m);
  size_t count = 0;
  while (true) {
    if (++count > max_candidates) {
      return Status::ResourceExhausted(
          "why-explanation enumeration exceeded max_candidates");
    }
    for (size_t i = 0; i < m; ++i) current[i] = lists[i][idx[i]];
    bool dominated = false;
    for (const Explanation& kept : antichain) {
      if (LessGeneral(*bound, current, kept)) {
        dominated = true;
        break;
      }
    }
    if (!dominated && ProductInsideAnswers(bound, current, &covers)) {
      antichain.erase(
          std::remove_if(antichain.begin(), antichain.end(),
                         [&](const Explanation& kept) {
                           return StrictlyLessGeneral(*bound, kept, current);
                         }),
          antichain.end());
      antichain.push_back(current);
    }
    size_t i = 0;
    while (i < m && ++idx[i] == lists[i].size()) {
      idx[i] = 0;
      ++i;
    }
    if (i == m) break;
  }
  std::sort(antichain.begin(), antichain.end());
  return antichain;
}

// --- Why-explanations w.r.t. the derived ontology OI ----------------------

namespace {

/// ext(C1) × ... × ext(Cm) ⊆ Ans over LS extensions — the same counting
/// core over the LS answer-cover kernel. `covers` must be built over the
/// sort-deduped answer vector; position `swap_pos` (if set) is read from
/// `repl` instead of exts[swap_pos], the probe form of the greedy search.
bool LsProductInsideAnswers(LsAnswerCovers* covers,
                            const std::vector<const ls::Extension*>& exts,
                            size_t swap_pos = SIZE_MAX,
                            const ls::Extension* repl = nullptr) {
  auto ext_at = [&](size_t i) -> const ls::Extension& {
    return i == swap_pos ? *repl : *exts[i];
  };
  for (size_t i = 0; i < exts.size(); ++i) {
    const ls::Extension& e = ext_at(i);
    if (!e.all && e.CardinalityOrInfinite() == 0) return true;
  }
  size_t product_size = 1;
  for (size_t i = 0; i < exts.size(); ++i) {
    const ls::Extension& e = ext_at(i);
    if (e.all) return false;
    size_t size = e.CardinalityOrInfinite();
    if (product_size > covers->num_answers() / size) return false;
    product_size *= size;
  }
  return covers->CountCovered(exts, swap_pos, repl) == product_size;
}

Result<ls::LsConcept> WhyLub(ls::LubContext* ctx, bool with_selections,
                             const std::vector<Value>& x) {
  if (with_selections) return ctx->LubWithSelections(x);
  return ctx->LubSelectionFree(x);
}

/// `covers` must be over the sort-deduped answer vector of `wi`.
bool IsLsWhyExplanationImpl(const WhyInstance& wi, const LsExplanation& e,
                            LsAnswerCovers* covers, ls::EvalCache* cache) {
  if (e.size() != wi.arity()) return false;
  const ValuePool& pool = wi.instance->pool();
  std::vector<const ls::Extension*> exts;
  exts.reserve(e.size());
  for (size_t i = 0; i < e.size(); ++i) {
    const ls::Extension& ext = cache->Eval(e[i]);
    if (!ext.ContainsInterned(pool.Lookup(wi.present[i]), wi.present[i])) {
      return false;
    }
    exts.push_back(&ext);
  }
  return LsProductInsideAnswers(covers, exts);
}

}  // namespace

bool IsLsWhyExplanation(const WhyInstance& wi, const LsExplanation& e) {
  ls::EvalCache cache(wi.instance);
  const std::vector<Tuple> answers = SortedUniqueAnswers(wi);
  LsAnswerCovers covers(wi.instance, &answers);
  return IsLsWhyExplanationImpl(wi, e, &covers, &cache);
}

Result<LsExplanation> IncrementalWhySearch(const WhyInstance& wi,
                                           bool with_selections) {
  ls::LubContext ctx(wi.instance);
  ls::EvalCache cache(wi.instance);
  size_t m = wi.arity();
  const std::vector<Tuple> answers = SortedUniqueAnswers(wi);
  LsAnswerCovers covers(wi.instance, &answers);
  const ValuePool& pool = wi.instance->pool();

  std::vector<std::vector<Value>> support(m);
  LsExplanation e(m);
  std::vector<const ls::Extension*> exts(m);
  for (size_t j = 0; j < m; ++j) {
    support[j] = {wi.present[j]};
    WHYNOT_ASSIGN_OR_RETURN(e[j], WhyLub(&ctx, with_selections, support[j]));
    exts[j] = &cache.Eval(e[j]);
  }
  // Unlike the why-not case, the nominal-pinned start can already fail:
  // lub({a_j}) may denote more than {a_j} only through columns, but the
  // nominal conjunct pins it, so the product here is exactly {a} ⊆ Ans.
  if (!LsProductInsideAnswers(&covers, exts)) {
    return Status::Internal(
        "nominal-pinned tuple is not a why-explanation; the product of "
        "nominals is {a} which must be inside Ans");
  }

  const std::vector<Value>& adom = wi.instance->ActiveDomain();
  const std::vector<ValueId>& adom_ids = wi.instance->ActiveDomainIds();
  for (size_t j = 0; j < m; ++j) {
    ValueId present_id = pool.Lookup(wi.present[j]);
    for (size_t bi = 0; bi < adom.size(); ++bi) {
      if (exts[j]->ContainsId(adom_ids[bi])) continue;
      std::vector<Value> extended = support[j];
      extended.push_back(adom[bi]);
      WHYNOT_ASSIGN_OR_RETURN(ls::LsConcept cand,
                              WhyLub(&ctx, with_selections, extended));
      const ls::Extension& cand_ext = cache.Eval(cand);
      if (cand_ext.ContainsInterned(present_id, wi.present[j]) &&
          LsProductInsideAnswers(&covers, exts, j, &cand_ext)) {
        support[j] = std::move(extended);
        e[j] = std::move(cand);
        exts[j] = &cand_ext;
      }
    }
  }
  return e;
}

Result<bool> CheckWhyMgeDerived(const WhyInstance& wi,
                                const LsExplanation& candidate,
                                bool with_selections,
                                ls::LubContext* lub_context) {
  ls::EvalCache cache(wi.instance);
  const std::vector<Tuple> answers = SortedUniqueAnswers(wi);
  LsAnswerCovers covers(wi.instance, &answers);
  if (!IsLsWhyExplanationImpl(wi, candidate, &covers, &cache)) return false;
  std::vector<const ls::Extension*> exts;
  exts.reserve(candidate.size());
  for (const ls::LsConcept& c : candidate) {
    exts.push_back(&cache.Eval(c));
  }
  const std::vector<Value>& adom = wi.instance->ActiveDomain();
  const std::vector<ValueId>& adom_ids = wi.instance->ActiveDomainIds();
  for (size_t j = 0; j < candidate.size(); ++j) {
    for (size_t bi = 0; bi < adom.size(); ++bi) {
      if (exts[j]->ContainsId(adom_ids[bi])) continue;
      std::vector<Value> extended = exts[j]->values();
      extended.push_back(adom[bi]);
      WHYNOT_ASSIGN_OR_RETURN(ls::LsConcept cand,
                              WhyLub(lub_context, with_selections, extended));
      const ls::Extension& cand_ext = cache.Eval(cand);
      // lub(ext ∪ {b}) is strictly more general than the candidate's
      // position (it contains b); if the tuple stays a why-explanation,
      // the candidate is not most general.
      if (LsProductInsideAnswers(&covers, exts, j, &cand_ext)) return false;
    }
  }
  return true;
}

}  // namespace whynot::explain
