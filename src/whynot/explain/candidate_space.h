#ifndef WHYNOT_EXPLAIN_CANDIDATE_SPACE_H_
#define WHYNOT_EXPLAIN_CANDIDATE_SPACE_H_

#include <cstddef>
#include <vector>

#include "whynot/ontology/ontology.h"

namespace whynot::explain {

/// The candidate product space of per-position concept lists (line 2 of
/// Algorithm 1), linearized in the serial odometer's order: position 0
/// advances fastest, so linear index L maps to
///   idx[i] = (L / stride_i) % |lists[i]|,  stride_0 = 1,
///   stride_{i+1} = stride_i * |lists[i]|.
/// The parallel candidate filters shard [0, total) into index ranges and
/// merge per-range results in range order, which reproduces the serial
/// enumeration order exactly.
///
/// Overflow guard: wide arities × large cover lists can push the product
/// past SIZE_MAX. The constructor detects that (overflow()) instead of
/// wrapping; `total()` and `Decode` are then meaningless, but the
/// odometer operations (`Advance`, `AdvanceBy`, `RemainingFrom`) remain
/// exact, so ParallelFilterSpace (search_core.h) falls back to
/// prefix-chunked odometer iteration and still enumerates the space in
/// the serial order until the caller stops it.
class CandidateSpace {
 public:
  explicit CandidateSpace(
      const std::vector<std::vector<onto::ConceptId>>& lists)
      : lists_(&lists) {
    total_ = lists.empty() ? 0 : 1;
    for (const auto& list : lists) {
      if (list.empty()) {
        total_ = 0;
        overflow_ = false;
        return;
      }
      if (__builtin_mul_overflow(total_, list.size(), &total_)) {
        overflow_ = true;
        return;
      }
    }
  }

  /// Number of odometer positions (the query arity).
  size_t arity() const { return lists_->size(); }
  /// Product of the list sizes; meaningless when overflow().
  size_t total() const { return total_; }
  /// The product exceeds SIZE_MAX (and therefore any candidate budget).
  bool overflow() const { return overflow_; }

  /// Odometer position of linear index `linear` (idx sized to the arity).
  void Decode(size_t linear, std::vector<size_t>* idx) const {
    idx->resize(lists_->size());
    for (size_t i = 0; i < lists_->size(); ++i) {
      size_t len = (*lists_)[i].size();
      (*idx)[i] = linear % len;
      linear /= len;
    }
  }

  /// Advances the odometer one step (position 0 fastest); returns false
  /// when it wraps past the end.
  bool Advance(std::vector<size_t>* idx) const {
    size_t i = 0;
    while (i < idx->size() && ++(*idx)[i] == (*lists_)[i].size()) {
      (*idx)[i] = 0;
      ++i;
    }
    return i < idx->size();
  }

  /// Advances the odometer `steps` positions in one mixed-radix add with
  /// carry — O(arity), no linearization, exact even when total()
  /// overflows. The caller must know the space does not wrap within
  /// `steps` (see RemainingFrom).
  void AdvanceBy(std::vector<size_t>* idx, size_t steps) const {
    size_t carry = steps;
    for (size_t i = 0; i < idx->size() && carry != 0; ++i) {
      size_t len = (*lists_)[i].size();
      size_t sum = (*idx)[i] + carry;
      (*idx)[i] = sum % len;
      carry = sum / len;
    }
  }

  /// Candidates from `idx` (inclusive) to the end of the space, saturated
  /// at SIZE_MAX when the count does not fit a word — enough to bound any
  /// chunk length, which is all the prefix-chunked iteration needs.
  size_t RemainingFrom(const std::vector<size_t>& idx) const {
    if (lists_->empty()) return 0;
    size_t remaining = 1;  // the candidate at idx itself
    size_t stride = 1;
    bool saturated = false;
    for (size_t i = 0; i < lists_->size(); ++i) {
      size_t len = (*lists_)[i].size();
      size_t above = len - 1 - idx[i];
      size_t term;
      if (saturated ? above > 0
                    : (__builtin_mul_overflow(above, stride, &term) ||
                       __builtin_add_overflow(remaining, term, &remaining))) {
        return SIZE_MAX;
      }
      if (!saturated && __builtin_mul_overflow(stride, len, &stride)) {
        // Strides past this position overflow; any non-zero `above` there
        // saturates the count.
        saturated = true;
      }
    }
    return remaining;
  }

 private:
  const std::vector<std::vector<onto::ConceptId>>* lists_;
  size_t total_ = 0;
  bool overflow_ = false;
};

/// The linearization order on odometer positions, without computing linear
/// indices (which overflow on the spaces the frontier enumerator serves):
/// position 0 advances fastest, so the last differing position decides.
/// The dominance-pruned frontier sorts every wave and its survivor replay
/// with this comparator to reproduce the serial odometer's order exactly.
template <typename IndexVec>
bool LinearOrderLess(const IndexVec& a, const IndexVec& b) {
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i];
  }
  return false;
}

}  // namespace whynot::explain

#endif  // WHYNOT_EXPLAIN_CANDIDATE_SPACE_H_
