#ifndef WHYNOT_EXPLAIN_CANDIDATE_SPACE_H_
#define WHYNOT_EXPLAIN_CANDIDATE_SPACE_H_

#include <cstddef>
#include <vector>

#include "whynot/ontology/ontology.h"

namespace whynot::explain {

/// The candidate product space of per-position concept lists (line 2 of
/// Algorithm 1), linearized in the serial odometer's order: position 0
/// advances fastest, so linear index L maps to
///   idx[i] = (L / stride_i) % |lists[i]|,  stride_0 = 1,
///   stride_{i+1} = stride_i * |lists[i]|.
/// The parallel candidate filters shard [0, total) into index ranges and
/// merge per-range results in range order, which reproduces the serial
/// enumeration order exactly.
class CandidateSpace {
 public:
  explicit CandidateSpace(
      const std::vector<std::vector<onto::ConceptId>>& lists)
      : lists_(&lists) {
    total_ = lists.empty() ? 0 : 1;
    for (const auto& list : lists) {
      if (list.empty()) {
        total_ = 0;
        overflow_ = false;
        return;
      }
      if (__builtin_mul_overflow(total_, list.size(), &total_)) {
        overflow_ = true;
        return;
      }
    }
  }

  /// Product of the list sizes; meaningless when overflow().
  size_t total() const { return total_; }
  /// The product exceeds SIZE_MAX (and therefore any candidate budget).
  bool overflow() const { return overflow_; }

  /// Odometer position of linear index `linear` (idx sized to the arity).
  void Decode(size_t linear, std::vector<size_t>* idx) const {
    idx->resize(lists_->size());
    for (size_t i = 0; i < lists_->size(); ++i) {
      size_t len = (*lists_)[i].size();
      (*idx)[i] = linear % len;
      linear /= len;
    }
  }

  /// Advances the odometer one step (position 0 fastest); returns false
  /// when it wraps past the end.
  bool Advance(std::vector<size_t>* idx) const {
    size_t i = 0;
    while (i < idx->size() && ++(*idx)[i] == (*lists_)[i].size()) {
      (*idx)[i] = 0;
      ++i;
    }
    return i < idx->size();
  }

 private:
  const std::vector<std::vector<onto::ConceptId>>* lists_;
  size_t total_ = 0;
  bool overflow_ = false;
};

}  // namespace whynot::explain

#endif  // WHYNOT_EXPLAIN_CANDIDATE_SPACE_H_
