#include "whynot/explain/exhaustive.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "whynot/common/parallel.h"
#include "whynot/explain/candidate_space.h"

namespace whynot::explain {

namespace {

/// C(a_i): the concepts whose extension contains a_i (line 1 of
/// Algorithm 1).
Result<std::vector<std::vector<onto::ConceptId>>> CandidateLists(
    onto::BoundOntology* bound, const WhyNotInstance& wni) {
  std::vector<std::vector<onto::ConceptId>> lists(wni.arity());
  for (size_t i = 0; i < wni.arity(); ++i) {
    ValueId id = bound->pool().Intern(wni.missing[i]);
    lists[i] = bound->ConceptsContaining(id);
    if (lists[i].empty()) return lists;  // no explanation can exist
  }
  return lists;
}

/// Candidates filtered in one parallel round before their survivors are
/// visited serially; bounds the survivor buffer without a sync per block.
constexpr size_t kFilterChunk = 1 << 16;

/// Enumerates the candidate product, calling `visit` on every tuple that
/// avoids Ans (line 2 of Algorithm 1). `visit` returns false to abort.
/// The avoidance test is the answer-cover kernel: per (position, concept)
/// cover bitmaps are resolved once per candidate list, then each candidate
/// is one m-way word-parallel AND with early exit.
///
/// With more than one pool thread the avoidance ANDs — the dominant cost —
/// run sharded over linear candidate ranges (the cover table is immutable
/// once resolved); each range collects its survivors, and `visit` then
/// consumes them serially in range order, i.e. in exactly the serial
/// odometer's order, one bounded chunk at a time.
template <typename Visit>
Status EnumerateExplanations(
    const WhyNotInstance& wni,
    const std::vector<std::vector<onto::ConceptId>>& lists,
    ConceptAnswerCovers* covers, size_t max_candidates, Visit visit) {
  size_t m = wni.arity();
  for (const auto& list : lists) {
    if (list.empty()) return Status::OK();
  }
  CandidateSpace space(lists);
  if (space.overflow() || space.total() > max_candidates) {
    return Status::ResourceExhausted(
        "candidate enumeration exceeded max_candidates (the space is "
        "exponential in the query arity, Theorem 5.2)");
  }
  // Pre-resolve cover pointers aligned with the candidate lists.
  ConceptAnswerCovers::ListCovers list_covers(covers, lists);

  std::vector<size_t> idx(m, 0);
  std::vector<onto::ConceptId> current(m);
  if (par::NumThreads() <= 1) {
    for (size_t linear = 0; linear < space.total(); ++linear) {
      if (!list_covers.ProductAnyAt(idx)) {
        for (size_t i = 0; i < m; ++i) current[i] = lists[i][idx[i]];
        if (!visit(current)) return Status::OK();
      }
      space.Advance(&idx);
    }
    return Status::OK();
  }

  std::vector<std::pair<size_t, std::vector<Explanation>>> blocks;
  std::mutex mutex;
  for (size_t chunk = 0; chunk < space.total(); chunk += kFilterChunk) {
    size_t chunk_end = std::min(space.total(), chunk + kFilterChunk);
    blocks.clear();
    par::ParallelFor(chunk_end - chunk, 1024, [&](size_t begin, size_t end) {
      std::vector<Explanation> survivors;
      std::vector<size_t> block_idx;
      space.Decode(chunk + begin, &block_idx);
      for (size_t off = begin; off < end; ++off) {
        if (!list_covers.ProductAnyAt(block_idx)) {
          Explanation e(m);
          for (size_t i = 0; i < m; ++i) e[i] = lists[i][block_idx[i]];
          survivors.push_back(std::move(e));
        }
        space.Advance(&block_idx);
      }
      std::lock_guard<std::mutex> lock(mutex);
      blocks.emplace_back(begin, std::move(survivors));
    });
    std::sort(blocks.begin(), blocks.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [begin, survivors] : blocks) {
      for (const Explanation& e : survivors) {
        if (!visit(e)) return Status::OK();
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<Explanation>> ExhaustiveSearchAllMge(
    onto::BoundOntology* bound, const WhyNotInstance& wni,
    const ExhaustiveOptions& options) {
  WHYNOT_ASSIGN_OR_RETURN(std::vector<std::vector<onto::ConceptId>> lists,
                          CandidateLists(bound, wni));
  ConceptAnswerCovers covers(bound, InternAnswers(bound, wni));

  // Line 2: the set X of all explanations.
  std::vector<Explanation> x;
  WHYNOT_RETURN_IF_ERROR(EnumerateExplanations(
      wni, lists, &covers, options.max_candidates,
      [&x](const Explanation& e) {
        x.push_back(e);
        return true;
      }));

  // Lines 3-5: remove every explanation strictly less general than another.
  std::vector<bool> removed(x.size(), false);
  for (size_t i = 0; i < x.size(); ++i) {
    if (removed[i]) continue;
    for (size_t j = 0; j < x.size(); ++j) {
      if (i == j || removed[j]) continue;
      if (StrictlyLessGeneral(*bound, x[j], x[i])) removed[j] = true;
    }
  }
  // Also collapse equivalent explanations (mutually ≤), keeping the first.
  std::vector<Explanation> result;
  for (size_t i = 0; i < x.size(); ++i) {
    if (removed[i]) continue;
    bool duplicate = false;
    for (const Explanation& kept : result) {
      if (LessGeneral(*bound, kept, x[i]) && LessGeneral(*bound, x[i], kept)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) result.push_back(x[i]);
  }
  std::sort(result.begin(), result.end());
  return result;
}

Result<std::vector<Explanation>> PrunedSearchAllMge(
    onto::BoundOntology* bound, const WhyNotInstance& wni,
    const ExhaustiveOptions& options) {
  WHYNOT_ASSIGN_OR_RETURN(std::vector<std::vector<onto::ConceptId>> lists,
                          CandidateLists(bound, wni));
  ConceptAnswerCovers covers(bound, InternAnswers(bound, wni));

  std::vector<Explanation> antichain;
  WHYNOT_RETURN_IF_ERROR(EnumerateExplanations(
      wni, lists, &covers, options.max_candidates,
      [&](const Explanation& e) {
        // Skip candidates dominated by (or equivalent to) a kept one.
        for (const Explanation& kept : antichain) {
          if (LessGeneral(*bound, e, kept)) return true;
        }
        // Remove kept ones strictly dominated by the candidate.
        antichain.erase(
            std::remove_if(antichain.begin(), antichain.end(),
                           [&](const Explanation& kept) {
                             return StrictlyLessGeneral(*bound, kept, e);
                           }),
            antichain.end());
        antichain.push_back(e);
        return true;
      }));
  std::sort(antichain.begin(), antichain.end());
  return antichain;
}

}  // namespace whynot::explain
