#include "whynot/explain/exhaustive.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "whynot/explain/search_core.h"

namespace whynot::explain {

namespace {

/// C(a_i): the concepts whose extension contains a_i (line 1 of
/// Algorithm 1).
Result<std::vector<std::vector<onto::ConceptId>>> CandidateLists(
    onto::BoundOntology* bound, const WhyNotInstance& wni) {
  std::vector<std::vector<onto::ConceptId>> lists(wni.arity());
  for (size_t i = 0; i < wni.arity(); ++i) {
    ValueId id = bound->pool().Intern(wni.missing[i]);
    lists[i] = bound->ConceptsContaining(id);
    if (lists[i].empty()) return lists;  // no explanation can exist
  }
  return lists;
}

/// Enumerates the candidate product, calling `visit` on every tuple that
/// avoids Ans (line 2 of Algorithm 1). `visit` returns false to abort.
/// The avoidance test is the answer-cover kernel — per (position, concept)
/// cover bitmaps resolved once per candidate list (CoverTable), each
/// candidate one m-way word-parallel AND with early exit. The enumeration
/// itself dispatches through ChooseStrategy: in-budget products run the
/// shared chunked candidate filter (ParallelFilterSpace, sharded
/// avoidance ANDs, survivors visited serially in the serial odometer's
/// order); over-budget products on a consistent binding — or any product
/// under kLattice — run the dominance-pruned frontier
/// (LatticeFilterSpace), which visits exactly the ≼-maximal survivors in
/// the same serial order, so MGE callers see bit-identical output.
/// `stop` / `progress` (both null or both set — set iff the caller wants a
/// certificate) make stops return OK with the deterministic partial
/// prefix; see ExhaustiveOptions::cert.
template <typename Visit>
Status EnumerateExplanations(
    onto::BoundOntology* bound, const WhyNotInstance& wni,
    const std::vector<std::vector<onto::ConceptId>>& lists,
    ConceptAnswerCovers* covers, const ExhaustiveOptions& options,
    LatticeHandle* lattice, Visit visit, exec::Stop* stop = nullptr,
    exec::Progress* progress = nullptr) {
  size_t m = wni.arity();
  for (const auto& list : lists) {
    if (list.empty()) return Status::OK();
  }
  CandidateSpace space(lists);
  std::unique_ptr<LatticeHandle> local_lattice;
  LatticeChoice choice =
      ChooseStrategy(options.strategy, space, options.max_candidates, bound,
                     lattice, &local_lattice);

  if (!choice.use_lattice && stop == nullptr &&
      (space.overflow() || space.total() > options.max_candidates)) {
    return Status::ResourceExhausted(
        "candidate enumeration exceeded max_candidates (the space is "
        "exponential in the query arity, Theorem 5.2)");
  }
  CoverTable table(covers, lists);
  std::vector<onto::ConceptId> current(m);
  auto pred = [&](const std::vector<size_t>& idx) {
    return !table.ProductAnyAt(idx);
  };
  auto consume = [&](const std::vector<size_t>& idx) {
    for (size_t i = 0; i < m; ++i) current[i] = lists[i][idx[i]];
    return visit(current);
  };

  if (choice.use_lattice) {
    LatticeFrontierHooks hooks;
    hooks.pred = pred;
    hooks.consume = consume;
    PruneStats local_ps;
    PruneStats* ps = progress != nullptr ? &local_ps : options.prune_stats;
    Status st =
        LatticeFilterSpace(space, *choice.lattice, lists,
                           options.max_candidates, hooks, ps, options.exec,
                           stop);
    if (progress != nullptr) {
      progress->tested = local_ps.products_enumerated;
      progress->remaining = local_ps.products_skipped;
      if (options.prune_stats != nullptr) {
        AccumulatePruneStats(options.prune_stats, local_ps);
      }
    }
    return st;
  }
  // With a certificate requested the odometer budget becomes a kBudget
  // stop at ordinal max_candidates — the budget-truncated prefix — instead
  // of the pre-emptive ResourceExhausted above.
  Status st = ParallelFilterSpace(space, options.exec, stop,
                                  stop != nullptr ? options.max_candidates
                                                  : SIZE_MAX,
                                  pred, consume);
  if (progress != nullptr) {
    size_t total = space.overflow() ? SIZE_MAX : space.total();
    size_t tested = stop != nullptr && stop->reason != exec::StopReason::kNone
                        ? stop->at
                        : total;
    progress->tested = tested;
    progress->remaining =
        total == SIZE_MAX ? SIZE_MAX : total - std::min(tested, total);
  }
  return st;
}

}  // namespace

Result<std::vector<Explanation>> ExhaustiveSearchAllMge(
    onto::BoundOntology* bound, const WhyNotInstance& wni,
    const ExhaustiveOptions& options, ConceptAnswerCovers* covers,
    LatticeHandle* lattice) {
  WHYNOT_ASSIGN_OR_RETURN(std::vector<std::vector<onto::ConceptId>> lists,
                          CandidateLists(bound, wni));
  std::optional<ConceptAnswerCovers> local;
  if (covers == nullptr) {
    local.emplace(bound, InternAnswers(bound, wni));
    covers = &*local;
  }

  // Line 2: the set X of all explanations. (On the frontier path X is
  // already the maximal antichain, so lines 3-5 below pass it through.)
  std::vector<Explanation> x;
  exec::Stop stop;
  exec::Progress progress;
  bool certified = options.cert != nullptr;
  WHYNOT_RETURN_IF_ERROR(EnumerateExplanations(
      bound, wni, lists, covers, options, lattice,
      [&x](const Explanation& e) {
        x.push_back(e);
        return true;
      },
      certified ? &stop : nullptr, certified ? &progress : nullptr));

  // Lines 3-5: remove every explanation strictly less general than another.
  std::vector<bool> removed(x.size(), false);
  for (size_t i = 0; i < x.size(); ++i) {
    if (removed[i]) continue;
    for (size_t j = 0; j < x.size(); ++j) {
      if (i == j || removed[j]) continue;
      if (StrictlyLessGeneral(*bound, x[j], x[i])) removed[j] = true;
    }
  }
  // Also collapse equivalent explanations (mutually ≤), keeping the first.
  std::vector<Explanation> result;
  for (size_t i = 0; i < x.size(); ++i) {
    if (removed[i]) continue;
    bool duplicate = false;
    for (const Explanation& kept : result) {
      if (LessGeneral(*bound, kept, x[i]) && LessGeneral(*bound, x[i], kept)) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) result.push_back(x[i]);
  }
  std::sort(result.begin(), result.end());
  exec::FillCertificate(options.cert, stop, progress, result.size());
  return result;
}

Result<std::vector<Explanation>> PrunedSearchAllMge(
    onto::BoundOntology* bound, const WhyNotInstance& wni,
    const ExhaustiveOptions& options, ConceptAnswerCovers* covers,
    LatticeHandle* lattice) {
  WHYNOT_ASSIGN_OR_RETURN(std::vector<std::vector<onto::ConceptId>> lists,
                          CandidateLists(bound, wni));
  std::optional<ConceptAnswerCovers> local;
  if (covers == nullptr) {
    local.emplace(bound, InternAnswers(bound, wni));
    covers = &*local;
  }

  std::vector<Explanation> antichain;
  exec::Stop stop;
  exec::Progress progress;
  bool certified = options.cert != nullptr;
  WHYNOT_RETURN_IF_ERROR(EnumerateExplanations(
      bound, wni, lists, covers, options, lattice,
      [&](const Explanation& e) {
        // Skip candidates dominated by (or equivalent to) a kept one.
        for (const Explanation& kept : antichain) {
          if (LessGeneral(*bound, e, kept)) return true;
        }
        // Remove kept ones strictly dominated by the candidate.
        antichain.erase(
            std::remove_if(antichain.begin(), antichain.end(),
                           [&](const Explanation& kept) {
                             return StrictlyLessGeneral(*bound, kept, e);
                           }),
            antichain.end());
        antichain.push_back(e);
        return true;
      },
      certified ? &stop : nullptr, certified ? &progress : nullptr));
  std::sort(antichain.begin(), antichain.end());
  exec::FillCertificate(options.cert, stop, progress, antichain.size());
  return antichain;
}

}  // namespace whynot::explain
