#ifndef WHYNOT_EXPLAIN_STRONG_DECIDE_H_
#define WHYNOT_EXPLAIN_STRONG_DECIDE_H_

#include <optional>
#include <string>

#include "whynot/common/status.h"
#include "whynot/explain/explanation.h"
#include "whynot/relational/instance.h"

namespace whynot::explain {

/// Outcome of the strong-explanation decision procedure.
enum class StrongVerdict {
  /// No instance of the schema makes the concept product intersect q.
  kStrong,
  /// A concrete, verified counterexample instance exists (see
  /// StrongDecision::counterexample / witness).
  kNotStrong,
  /// The procedure could not decide within its resource bounds (only
  /// possible when the schema mixes constraint classes whose interaction
  /// requires an unbounded chase; see StrongDecision::detail).
  kUnknown,
};

const char* StrongVerdictName(StrongVerdict v);

struct StrongDecideOptions {
  /// Cap on (query disjunct × concept-conjunct option) combinations; view
  /// concepts multiply options per conjunct.
  size_t max_branches = 100000;
  /// Rounds of the inclusion-dependency completion chase.
  int max_chase_rounds = 12;
  /// View-expansion caps (see rel::ExpandViews).
  size_t max_expansion_disjuncts = 20000;
  size_t max_expansion_atoms = 20000;
};

struct StrongDecision {
  StrongVerdict verdict = StrongVerdict::kUnknown;
  /// For kNotStrong: an instance I′ of the schema (constraints satisfied,
  /// views materialized) and a tuple in (ext(C1,I′) × ... × ext(Cm,I′)) ∩
  /// q(I′). Both are re-verified against the public evaluators before
  /// being returned.
  std::optional<rel::Instance> counterexample;
  Tuple witness;
  /// For kUnknown: why. For kNotStrong: which query disjunct refutes.
  std::string detail;
};

/// Decides whether the tuple of LS concepts is a *strong explanation*
/// (Section 6): whether (ext(C1,I′) × ... × ext(Cm,I′)) ∩ q(I′) = ∅ for
/// every instance I′ of `schema` — not merely for the instance at hand.
/// The paper introduces strong explanations and leaves their theory as
/// future work; this procedure decides the natural decidable cases and is
/// conservative elsewhere:
///
///   * No constraints, or UCQ views only: exact. Each query disjunct is
///     expanded over the views and conjoined with one membership pattern
///     per concept conjunct (a fresh atom for π_A(σ(R)), an equality pin
///     for a nominal); the combined pattern with its comparison intervals
///     is satisfiable iff a counterexample instance exists, and a
///     satisfying pattern instantiates directly to one.
///   * FDs: exact. The pattern is chased with equality-generating rules
///     before instantiation; a constant clash kills the branch.
///   * IDs (and FD+ID mixtures): refutation-complete. The instantiated
///     counterexample is completed by a bounded ID chase; if the chase
///     does not close (or re-breaks an FD), the branch reports kUnknown
///     rather than guessing.
///
/// A kNotStrong result always carries a verified counterexample; kStrong
/// is exact whenever no branch was cut off (no kUnknown detail).
Result<StrongDecision> DecideStrongExplanation(
    const rel::Schema& schema, const rel::UnionQuery& query,
    const LsExplanation& candidate, const StrongDecideOptions& options = {});

/// Convenience wrapper: checks that `candidate` is an explanation for the
/// why-not instance (Definition 3.2 on wni's own instance) and then runs
/// DecideStrongExplanation on its schema and query.
Result<StrongDecision> IsStrongExplanation(
    const WhyNotInstance& wni, const LsExplanation& candidate,
    const StrongDecideOptions& options = {});

}  // namespace whynot::explain

#endif  // WHYNOT_EXPLAIN_STRONG_DECIDE_H_
