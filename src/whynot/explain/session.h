#ifndef WHYNOT_EXPLAIN_SESSION_H_
#define WHYNOT_EXPLAIN_SESSION_H_

#include <memory>
#include <optional>
#include <vector>

#include "whynot/common/status.h"
#include "whynot/concepts/concept_cache.h"
#include "whynot/concepts/lub.h"
#include "whynot/explain/cardinality.h"
#include "whynot/explain/check_mge.h"
#include "whynot/explain/enumerate.h"
#include "whynot/explain/exhaustive.h"
#include "whynot/explain/existence.h"
#include "whynot/explain/incremental.h"
#include "whynot/explain/why_explanation.h"
#include "whynot/explain/whynot_instance.h"
#include "whynot/ontology/ontology.h"

namespace whynot::explain {

/// Session-wide knobs, fixed at Bind time. The per-algorithm option
/// structs keep their one-shot meanings; `lub` overrides the lub limits
/// of both the incremental and the enumeration searches so the session's
/// single shared LubContext serves every derived request.
struct ExplainSessionOptions {
  ExhaustiveOptions exhaustive;    // Exhaustive/Pruned/CardMaximal budgets
  ExistenceOptions existence;
  IncrementalOptions incremental;  // WhyNot()/Why(): selections, ⊤ sweep
  EnumerateOptions enumerate;
  ls::LubOptions lub;

  /// Limits of the session's shared concept-evaluation cache (the
  /// lub+eval memo every derived request publishes into and reuses).
  /// Leave max_bytes at 0: the session's answer covers key bitmaps by
  /// published extension addresses (see ConceptCacheOptions::max_bytes).
  ls::ConceptCacheOptions concept_cache;

  /// Default per-request deadline in milliseconds (0 = none). Every
  /// request that is not handed an explicit ExecContext runs under a
  /// fresh deadline of this length plus the session's cancel token; an
  /// explicit context overrides both.
  int64_t request_deadline_ms = 0;
};

/// An MGE answer graded by the degradation ladder (MgesWithDegradation):
/// the certificate says what the explanation list is worth — kExact (the
/// full antichain), kLowerBound (a deterministic prefix of it, cut by the
/// stop the certificate records), or kHeuristic (the greedy fallback's
/// single sound explanation).
struct GradedMges {
  std::vector<Explanation> explanations;
  exec::Certificate certificate;
};

/// Prepared serving facade for repeated explanation traffic over one
/// (ontology, instance, query, answers) binding.
///
/// The one-shot entry points re-derive the same warm state on every call:
/// query answers, extension warm-up, answer-cover bitmaps, lub canonical
/// boxes, eval memos. A session binds that state once — Bind evaluates
/// the query, warms the instance's lazy caches for concurrent reads,
/// warms every bound-ontology extension (sharded), and constructs the
/// answer-cover tables — and then serves repeated WhyNot / Why /
/// EnumerateMges / Cardinality / Existence requests that only vary the
/// asked-about tuple. Results, enumeration order, and stats are
/// bit-identical to the standalone entry points at every thread count:
/// all shared caches memoize pure functions of the fixed (instance,
/// answers) binding, so warm-vs-cold only changes time.
///
/// Invalidation: the session records rel::Instance::version() at warm
/// time. A mutation (AddFact / ClearRelation) bumps the counter, and the
/// next request deterministically rebuilds everything — re-evaluating the
/// query when the session was bound from one — instead of serving stale
/// extensions. Mutating the instance *during* a request is not supported
/// (same contract as the one-shot searches).
///
/// Threading: requests dispatch into the same parallel searches as the
/// one-shot calls. The session itself is single-threaded — serve
/// concurrent callers from one session with external serialization, or
/// give each its own session.
class ExplainSession {
 public:
  /// Binds and warms a session; evaluates `query` over `instance` for the
  /// answer set. `ontology` is optional — without it only the derived-
  /// ontology (OI) requests are served.
  static Result<ExplainSession> Bind(const rel::Instance* instance,
                                     rel::UnionQuery query,
                                     const onto::FiniteOntology* ontology =
                                         nullptr,
                                     ExplainSessionOptions options = {});

  /// As Bind, from a precomputed answer set (sort-deduplicated here; the
  /// paper treats Ans as part of the input). Version invalidation then
  /// rebuilds caches against the mutated instance but keeps this answer
  /// set — matching one-shot calls built from the same answers.
  static Result<ExplainSession> BindWithAnswers(
      const rel::Instance* instance, std::vector<Tuple> answers,
      const onto::FiniteOntology* ontology = nullptr,
      ExplainSessionOptions options = {});

  /// Ans = q(I), sorted and duplicate-free.
  const std::vector<Tuple>& answers() const;
  bool has_ontology() const;
  /// The instance version the warm state was built against (tests).
  uint64_t warmed_version() const;
  /// The warm bound ontology (null without an external ontology). Exposed
  /// for rendering — concept names, DOT export; invalidated by the next
  /// request after an instance mutation.
  onto::BoundOntology* bound_ontology();

  /// Definition 3.1 consistency of the bound instance with the external
  /// ontology. Requires an ontology.
  Status CheckConsistent();

  /// Per-session memory accounting over the warm state (the BENCH memory
  /// column's source). `*_dense_equivalent_*` fields report the
  /// counterfactual residency had every adaptive set force-built its flat
  /// pool/answer-universe DenseBitmap (the pre-hybrid engine), so
  /// total_bytes / dense_equivalent_total_bytes is the measured residency
  /// reduction of the hybrid containers on this binding.
  struct MemoryStats {
    size_t instance_bytes = 0;    // columns, fact index, column indexes
    size_t ext_bytes = 0;         // warm extension table (external ontology)
    size_t cover_bytes = 0;       // answer-cover rows, both ontologies
    size_t eval_cache_bytes = 0;  // derived-ontology extension memos
    size_t shared_cache_bytes = 0;  // published concept-cache entries
    size_t total_bytes = 0;
    size_t dense_equivalent_total_bytes = 0;
    size_t hybrid_ext_sets = 0;   // extensions frozen to hybrid containers
    size_t dense_ext_sets = 0;    // extensions frozen to flat mirrors
  };
  MemoryStats MemoryUsage() const;

  /// Cumulative traffic counters of the session's shared concept cache
  /// across every derived request served so far. Observability only — the
  /// split between shared/local hits is thread-dependent (the values
  /// served are identical); counters survive rewarm, entries do not.
  ls::ConceptCacheStats CacheStats() const;

  // --- Execution control ---------------------------------------------------
  //
  // Every request below takes an optional ExecContext. When `exec` is
  // null the session builds one per request from
  // ExplainSessionOptions::request_deadline_ms and the session's cancel
  // token; an explicit context is used verbatim (its own deadline, token,
  // and fault injector), so Cancel() only reaches requests that let the
  // session build their context. Stops surface as DeadlineExceeded /
  // Cancelled errors except through MgesWithDegradation, which converts
  // them into graded partial answers.

  /// Cooperatively cancels the in-flight request (callable from another
  /// thread) and fails every later one until ResetCancel(). Only requests
  /// running under a session-built context (exec == nullptr) observe it.
  void Cancel();
  /// Re-arms the session after Cancel() by installing a fresh token.
  void ResetCancel();

  // --- Derived-ontology (OI) requests ------------------------------------

  /// Algorithm 2 (INCREMENTAL SEARCH): one most-general explanation for
  /// the missing tuple w.r.t. OI.
  Result<LsExplanation> WhyNot(const Tuple& missing,
                               const exec::ExecContext* exec = nullptr);

  /// All most-general explanations w.r.t. OI (EnumerateAllMges).
  Result<std::vector<LsExplanation>> EnumerateMges(
      const Tuple& missing, EnumerateStats* stats = nullptr,
      const exec::ExecContext* exec = nullptr);

  /// CHECK-MGE w.r.t. OI for a candidate LS explanation.
  Result<bool> CheckMgeDerived(const Tuple& missing,
                               const LsExplanation& candidate,
                               const exec::ExecContext* exec = nullptr);

  /// The dual question: a most-general why-explanation for a tuple that
  /// IS an answer, w.r.t. OI.
  Result<LsExplanation> Why(const Tuple& present,
                            const exec::ExecContext* exec = nullptr);

  // --- External-ontology requests (require an ontology) -------------------

  /// Algorithm 1 (EXHAUSTIVE SEARCH): all most-general explanations.
  Result<std::vector<Explanation>> ExhaustiveMges(
      const Tuple& missing, const exec::ExecContext* exec = nullptr);

  /// The pruned-antichain variant (same result set).
  Result<std::vector<Explanation>> PrunedMges(
      const Tuple& missing, const exec::ExecContext* exec = nullptr);

  /// The degradation ladder over PrunedMges: a stop no longer aborts the
  /// request but walks down one rung at a time — (1) the exact antichain
  /// (Quality::kExact), (2) the deterministic partial prefix the
  /// interrupted search had confirmed (kLowerBound), (3) when the stop
  /// left nothing, one greedy hill-climbing explanation computed under a
  /// cancel-only grace context (kHeuristic). The certificate keeps the
  /// original stop reason; a cancelled request never takes rung 3 (the
  /// caller asked for no further work).
  Result<GradedMges> MgesWithDegradation(
      const Tuple& missing, const exec::ExecContext* exec = nullptr);

  /// EXISTENCE-OF-EXPLANATION; stores a witness when one exists.
  Result<bool> Exists(const Tuple& missing, Explanation* witness = nullptr,
                      const exec::ExecContext* exec = nullptr);

  /// Exact >card-maximal explanation (Section 6).
  Result<std::optional<CardinalityResult>> CardMaximal(
      const Tuple& missing, const exec::ExecContext* exec = nullptr);

  /// The greedy hill-climbing heuristic for the same preference.
  Result<std::optional<CardinalityResult>> GreedyCard(
      const Tuple& missing, const exec::ExecContext* exec = nullptr);

  /// CHECK-MGE w.r.t. the external ontology.
  Result<bool> CheckMge(const Tuple& missing, const Explanation& candidate,
                        const exec::ExecContext* exec = nullptr);

  /// All most-general *why*-explanations w.r.t. the external ontology.
  Result<std::vector<Explanation>> WhyMges(
      const Tuple& present, const exec::ExecContext* exec = nullptr);

  // Out-of-line: State is incomplete here (pimpl).
  ExplainSession(ExplainSession&&) noexcept;
  ExplainSession& operator=(ExplainSession&&) noexcept;
  ~ExplainSession();

 private:
  struct State;
  explicit ExplainSession(std::unique_ptr<State> state);

  /// Shared Bind/BindWithAnswers boilerplate: allocates the state and
  /// couples the per-algorithm lub limits to the session-wide ones.
  static std::unique_ptr<State> MakeState(const rel::Instance* instance,
                                          const onto::FiniteOntology* ontology,
                                          ExplainSessionOptions options);

  /// Rebuilds all warm state against the current instance contents;
  /// re-evaluates the query when the session owns one. `exec` is observed
  /// by the extension warm-up (WarmExtensions), so a request's deadline
  /// covers the rewarm it triggers.
  Status Rewarm(const exec::ExecContext* exec = nullptr);
  /// Rewarm iff the instance version moved since the last warm-up.
  Status RewarmIfStale(const exec::ExecContext* exec = nullptr);
  /// RewarmIfStale, then validates and installs the request tuple
  /// (missing ∉ Ans when `expect_answer` is false, present ∈ Ans
  /// otherwise).
  Status Prepare(const Tuple& tuple, bool expect_answer,
                 const exec::ExecContext* exec = nullptr);
  Status RequireOntology() const;

  std::unique_ptr<State> state_;
};

}  // namespace whynot::explain

#endif  // WHYNOT_EXPLAIN_SESSION_H_
