#include "whynot/common/dense_bitmap.h"

#include <algorithm>
#include <cassert>

// SIMD word kernels behind a runtime-dispatch shim. On x86-64 the AVX2
// functions carry the target attribute themselves, so the file builds
// without -mavx2 and dispatch tests the CPU at runtime. On aarch64 NEON is
// part of the baseline ISA, so the lane needs no runtime test — the shim
// just routes sizes past the threshold to it. The scalar loops remain the
// portable fallback everywhere else.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define WHYNOT_BITMAP_AVX2 1
#include <immintrin.h>
#elif defined(__aarch64__) && (defined(__GNUC__) || defined(__clang__))
#define WHYNOT_BITMAP_NEON 1
#include <arm_neon.h>
#endif

namespace whynot {

namespace {

size_t WordsFor(int32_t universe) {
  return (static_cast<size_t>(universe) + 63) / 64;
}

// ---- scalar kernels (portable fallback) -----------------------------------

bool SubsetOfScalar(const uint64_t* a, const uint64_t* b, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (a[i] & ~b[i]) return false;
  }
  return true;
}

void AndScalar(const uint64_t* a, const uint64_t* b, uint64_t* out, size_t n) {
  for (size_t i = 0; i < n; ++i) out[i] = a[i] & b[i];
}

size_t CountScalar(const uint64_t* w, size_t n) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<size_t>(__builtin_popcountll(w[i]));
  }
  return count;
}

size_t AndCountScalar(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<size_t>(__builtin_popcountll(a[i] & b[i]));
  }
  return count;
}

// kSimdMinWords (the dispatch threshold) now lives in dense_bitmap.h next
// to the other representation constants.

#ifdef WHYNOT_BITMAP_AVX2

bool HasAvx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}

__attribute__((target("avx2"))) bool SubsetOfAvx2(const uint64_t* a,
                                                  const uint64_t* b,
                                                  size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    __m256i excess = _mm256_andnot_si256(vb, va);  // va & ~vb
    if (!_mm256_testz_si256(excess, excess)) return false;
  }
  return SubsetOfScalar(a + i, b + i, n - i);
}

__attribute__((target("avx2"))) void AndAvx2(const uint64_t* a,
                                             const uint64_t* b, uint64_t* out,
                                             size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm256_and_si256(va, vb));
  }
  AndScalar(a + i, b + i, out + i, n - i);
}

// Mula's nibble-LUT popcount: per-byte counts via pshufb, horizontally
// summed into 64-bit lanes with sad_epu8.
__attribute__((target("avx2"))) size_t CountAvx2(const uint64_t* w, size_t n) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w + i));
    __m256i lo = _mm256_and_si256(v, low_mask);
    __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
    __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                  _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, _mm256_setzero_si256()));
  }
  uint64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3] + CountScalar(w + i, n - i);
}

// Fused AND + Mula popcount: the AND happens in-register and feeds the
// nibble LUT directly — no intermediate word buffer.
__attribute__((target("avx2"))) size_t AndCountAvx2(const uint64_t* a,
                                                    const uint64_t* b,
                                                    size_t n) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  __m256i acc = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    __m256i v = _mm256_and_si256(va, vb);
    __m256i lo = _mm256_and_si256(v, low_mask);
    __m256i hi = _mm256_and_si256(_mm256_srli_epi32(v, 4), low_mask);
    __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                  _mm256_shuffle_epi8(lut, hi));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, _mm256_setzero_si256()));
  }
  uint64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3] +
         AndCountScalar(a + i, b + i, n - i);
}

#endif  // WHYNOT_BITMAP_AVX2

#ifdef WHYNOT_BITMAP_NEON

// 128-bit NEON lanes, two q-registers (4 words) per iteration for ILP.

bool SubsetOfNeon(const uint64_t* a, const uint64_t* b, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    uint64x2_t a0 = vld1q_u64(a + i);
    uint64x2_t a1 = vld1q_u64(a + i + 2);
    uint64x2_t b0 = vld1q_u64(b + i);
    uint64x2_t b1 = vld1q_u64(b + i + 2);
    // excess = a & ~b, nonzero iff some bit of a is missing from b.
    uint64x2_t excess = vorrq_u64(vbicq_u64(a0, b0), vbicq_u64(a1, b1));
    if (vgetq_lane_u64(excess, 0) | vgetq_lane_u64(excess, 1)) return false;
  }
  return SubsetOfScalar(a + i, b + i, n - i);
}

void AndNeon(const uint64_t* a, const uint64_t* b, uint64_t* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    vst1q_u64(out + i, vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i)));
    vst1q_u64(out + i + 2,
              vandq_u64(vld1q_u64(a + i + 2), vld1q_u64(b + i + 2)));
  }
  AndScalar(a + i, b + i, out + i, n - i);
}

// vcnt counts per byte; the widening pairwise adds fold bytes up to one
// 64-bit count per lane, accumulated across iterations.
size_t CountNeon(const uint64_t* w, size_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint8x16_t bytes = vreinterpretq_u8_u64(vld1q_u64(w + i));
    uint8x16_t cnt = vcntq_u8(bytes);
    acc = vaddq_u64(acc, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(cnt))));
  }
  size_t count = static_cast<size_t>(vgetq_lane_u64(acc, 0)) +
                 static_cast<size_t>(vgetq_lane_u64(acc, 1));
  return count + CountScalar(w + i, n - i);
}

// Fused AND + vcnt popcount, same widening pairwise fold as CountNeon.
size_t AndCountNeon(const uint64_t* a, const uint64_t* b, size_t n) {
  uint64x2_t acc = vdupq_n_u64(0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    uint64x2_t v = vandq_u64(vld1q_u64(a + i), vld1q_u64(b + i));
    uint8x16_t cnt = vcntq_u8(vreinterpretq_u8_u64(v));
    acc = vaddq_u64(acc, vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(cnt))));
  }
  size_t count = static_cast<size_t>(vgetq_lane_u64(acc, 0)) +
                 static_cast<size_t>(vgetq_lane_u64(acc, 1));
  return count + AndCountScalar(a + i, b + i, n - i);
}

#endif  // WHYNOT_BITMAP_NEON

// ---- dispatch shim --------------------------------------------------------

bool SubsetOfWordsDispatch(const uint64_t* a, const uint64_t* b, size_t n) {
#ifdef WHYNOT_BITMAP_AVX2
  if (n >= kSimdMinWords && HasAvx2()) return SubsetOfAvx2(a, b, n);
#elif defined(WHYNOT_BITMAP_NEON)
  if (n >= kSimdMinWords) return SubsetOfNeon(a, b, n);
#endif
  return SubsetOfScalar(a, b, n);
}

void AndWordsDispatch(const uint64_t* a, const uint64_t* b, uint64_t* out,
                      size_t n) {
#ifdef WHYNOT_BITMAP_AVX2
  if (n >= kSimdMinWords && HasAvx2()) {
    AndAvx2(a, b, out, n);
    return;
  }
#elif defined(WHYNOT_BITMAP_NEON)
  if (n >= kSimdMinWords) {
    AndNeon(a, b, out, n);
    return;
  }
#endif
  AndScalar(a, b, out, n);
}

size_t CountWords(const uint64_t* w, size_t n) {
#ifdef WHYNOT_BITMAP_AVX2
  if (n >= kSimdMinWords && HasAvx2()) return CountAvx2(w, n);
#elif defined(WHYNOT_BITMAP_NEON)
  if (n >= kSimdMinWords) return CountNeon(w, n);
#endif
  return CountScalar(w, n);
}

size_t AndCountWordsDispatch(const uint64_t* a, const uint64_t* b, size_t n) {
#ifdef WHYNOT_BITMAP_AVX2
  if (n >= kSimdMinWords && HasAvx2()) return AndCountAvx2(a, b, n);
#elif defined(WHYNOT_BITMAP_NEON)
  if (n >= kSimdMinWords) return AndCountNeon(a, b, n);
#endif
  return AndCountScalar(a, b, n);
}

}  // namespace

DenseBitmap::DenseBitmap(const std::vector<ValueId>& sorted_ids,
                         int32_t universe) {
  int32_t max_id = sorted_ids.empty() ? -1 : sorted_ids.back();
  if (universe <= max_id) universe = max_id + 1;
  words_.assign(WordsFor(universe), 0);
  for (ValueId id : sorted_ids) {
    assert(id >= 0);
    words_[static_cast<size_t>(id) / 64] |= uint64_t{1}
                                            << (static_cast<size_t>(id) % 64);
  }
}

DenseBitmap DenseBitmap::AllSet(int32_t n) {
  DenseBitmap out;
  if (n <= 0) return out;
  size_t full = static_cast<size_t>(n) / 64;
  size_t rest = static_cast<size_t>(n) % 64;
  out.words_.assign(WordsFor(n), ~uint64_t{0});
  if (rest != 0) out.words_[full] = (uint64_t{1} << rest) - 1;
  return out;
}

bool DenseBitmap::SubsetOf(const DenseBitmap& other) const {
  size_t common = std::min(words_.size(), other.words_.size());
  if (!SubsetOfWordsDispatch(words_.data(), other.words_.data(), common)) {
    return false;
  }
  for (size_t w = common; w < words_.size(); ++w) {
    if (words_[w]) return false;
  }
  return true;
}

void DenseBitmap::AndWordsInPlace(uint64_t* acc, const uint64_t* words,
                                  size_t n) {
  AndWordsDispatch(acc, words, acc, n);
}

void DenseBitmap::AndWordsTo(const uint64_t* a, const uint64_t* b,
                             uint64_t* out, size_t n) {
  AndWordsDispatch(a, b, out, n);
}

bool DenseBitmap::SubsetOfWords(const uint64_t* a, const uint64_t* b,
                                size_t n) {
  return SubsetOfWordsDispatch(a, b, n);
}

size_t DenseBitmap::PopcountWords(const uint64_t* words, size_t n) {
  return CountWords(words, n);
}

size_t DenseBitmap::AndCountWords(const uint64_t* a, const uint64_t* b,
                                  size_t n) {
  return AndCountWordsDispatch(a, b, n);
}

DenseBitmap DenseBitmap::Intersect(const DenseBitmap& a, const DenseBitmap& b) {
  DenseBitmap out;
  size_t common = std::min(a.words_.size(), b.words_.size());
  out.words_.resize(common);
  AndWordsDispatch(a.words_.data(), b.words_.data(), out.words_.data(), common);
  return out;
}

size_t DenseBitmap::Count() const {
  return CountWords(words_.data(), words_.size());
}

std::vector<ValueId> DenseBitmap::ToIds() const {
  std::vector<ValueId> ids;
  ids.reserve(Count());
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      int bit = __builtin_ctzll(word);
      ids.push_back(static_cast<ValueId>(w * 64 + static_cast<size_t>(bit)));
      word &= word - 1;
    }
  }
  return ids;
}

}  // namespace whynot
