#include "whynot/common/dense_bitmap.h"

#include <algorithm>
#include <cassert>

namespace whynot {

namespace {

size_t WordsFor(int32_t universe) {
  return (static_cast<size_t>(universe) + 63) / 64;
}

}  // namespace

DenseBitmap::DenseBitmap(const std::vector<ValueId>& sorted_ids,
                         int32_t universe) {
  int32_t max_id = sorted_ids.empty() ? -1 : sorted_ids.back();
  if (universe <= max_id) universe = max_id + 1;
  words_.assign(WordsFor(universe), 0);
  for (ValueId id : sorted_ids) {
    assert(id >= 0);
    words_[static_cast<size_t>(id) / 64] |= uint64_t{1}
                                            << (static_cast<size_t>(id) % 64);
  }
}

bool DenseBitmap::SubsetOf(const DenseBitmap& other) const {
  size_t common = std::min(words_.size(), other.words_.size());
  for (size_t w = 0; w < common; ++w) {
    if (words_[w] & ~other.words_[w]) return false;
  }
  for (size_t w = common; w < words_.size(); ++w) {
    if (words_[w]) return false;
  }
  return true;
}

DenseBitmap DenseBitmap::Intersect(const DenseBitmap& a, const DenseBitmap& b) {
  DenseBitmap out;
  size_t common = std::min(a.words_.size(), b.words_.size());
  out.words_.resize(common);
  for (size_t w = 0; w < common; ++w) {
    out.words_[w] = a.words_[w] & b.words_[w];
  }
  return out;
}

size_t DenseBitmap::Count() const {
  size_t count = 0;
  for (uint64_t w : words_) {
    count += static_cast<size_t>(__builtin_popcountll(w));
  }
  return count;
}

std::vector<ValueId> DenseBitmap::ToIds() const {
  std::vector<ValueId> ids;
  ids.reserve(Count());
  for (size_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      int bit = __builtin_ctzll(word);
      ids.push_back(static_cast<ValueId>(w * 64 + static_cast<size_t>(bit)));
      word &= word - 1;
    }
  }
  return ids;
}

}  // namespace whynot
