#include "whynot/common/value.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace whynot {

double Value::AsNumber() const {
  if (kind() == Kind::kInt) return static_cast<double>(AsInt());
  return AsDoubleRaw();
}

std::string Value::ToString() const {
  switch (kind()) {
    case Kind::kInt:
      return std::to_string(AsInt());
    case Kind::kDouble: {
      double d = AsDoubleRaw();
      if (d == std::floor(d) && std::abs(d) < 1e15) {
        // Render integral doubles compactly ("5000000" not "5e+06").
        return std::to_string(static_cast<int64_t>(d));
      }
      std::ostringstream os;
      os << d;
      return os.str();
    }
    case Kind::kString:
      return AsString();
  }
  return "";
}

std::string Value::ToLiteral() const {
  if (is_string()) return "\"" + AsString() + "\"";
  return ToString();
}

bool Value::operator==(const Value& other) const {
  if (is_number() && other.is_number()) {
    return AsNumber() == other.AsNumber();
  }
  if (is_string() != other.is_string()) return false;
  return AsString() == other.AsString();
}

bool Value::operator<(const Value& other) const {
  if (is_number()) {
    if (!other.is_number()) return true;  // numbers < strings
    return AsNumber() < other.AsNumber();
  }
  if (other.is_number()) return false;
  return AsString() < other.AsString();
}

size_t Value::Hash() const {
  if (is_number()) {
    // Ints and doubles with equal numeric value must hash alike.
    double d = AsNumber();
    return std::hash<double>()(d);
  }
  return std::hash<std::string>()(AsString());
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

ValueId ValuePool::Intern(const Value& v) {
  auto it = index_.find(v);
  if (it != index_.end()) return it->second;
  ValueId id = static_cast<ValueId>(values_.size());
  values_.push_back(v);
  index_.emplace(v, id);
  order_dirty_ = true;
  return id;
}

ValueId ValuePool::Lookup(const Value& v) const {
  auto it = index_.find(v);
  return it == index_.end() ? -1 : it->second;
}

ValuePool ValuePool::Clone() const {
  ValuePool out;
  out.values_ = values_;
  out.index_ = index_;
  out.order_dirty_ = true;
  return out;
}

void ValuePool::EnsureOrderIndex() const {
  if (!order_dirty_ && sorted_ids_.size() == values_.size()) return;
  sorted_ids_.resize(values_.size());
  for (size_t i = 0; i < values_.size(); ++i) {
    sorted_ids_[i] = static_cast<ValueId>(i);
  }
  std::sort(sorted_ids_.begin(), sorted_ids_.end(),
            [this](ValueId a, ValueId b) {
              return values_[static_cast<size_t>(a)] <
                     values_[static_cast<size_t>(b)];
            });
  ranks_.resize(values_.size());
  for (size_t r = 0; r < sorted_ids_.size(); ++r) {
    ranks_[static_cast<size_t>(sorted_ids_[r])] = static_cast<int32_t>(r);
  }
  order_dirty_ = false;
}

const std::vector<ValueId>& ValuePool::SortedIds() const {
  EnsureOrderIndex();
  return sorted_ids_;
}

int32_t ValuePool::LowerBoundRank(const Value& v) const {
  EnsureOrderIndex();
  auto it = std::lower_bound(sorted_ids_.begin(), sorted_ids_.end(), v,
                             [this](ValueId id, const Value& val) {
                               return values_[static_cast<size_t>(id)] < val;
                             });
  return static_cast<int32_t>(it - sorted_ids_.begin());
}

int32_t ValuePool::UpperBoundRank(const Value& v) const {
  EnsureOrderIndex();
  auto it = std::upper_bound(sorted_ids_.begin(), sorted_ids_.end(), v,
                             [this](const Value& val, ValueId id) {
                               return val < values_[static_cast<size_t>(id)];
                             });
  return static_cast<int32_t>(it - sorted_ids_.begin());
}

std::string TupleToString(const Tuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += t[i].ToString();
  }
  out += ")";
  return out;
}

size_t TupleHash::operator()(const Tuple& t) const {
  size_t h = 1469598103934665603ull;
  for (const Value& v : t) {
    h ^= v.Hash();
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace whynot
