#include "whynot/common/value.h"

#include <cmath>
#include <sstream>

namespace whynot {

double Value::AsNumber() const {
  if (kind() == Kind::kInt) return static_cast<double>(AsInt());
  return AsDoubleRaw();
}

std::string Value::ToString() const {
  switch (kind()) {
    case Kind::kInt:
      return std::to_string(AsInt());
    case Kind::kDouble: {
      double d = AsDoubleRaw();
      if (d == std::floor(d) && std::abs(d) < 1e15) {
        // Render integral doubles compactly ("5000000" not "5e+06").
        return std::to_string(static_cast<int64_t>(d));
      }
      std::ostringstream os;
      os << d;
      return os.str();
    }
    case Kind::kString:
      return AsString();
  }
  return "";
}

std::string Value::ToLiteral() const {
  if (is_string()) return "\"" + AsString() + "\"";
  return ToString();
}

bool Value::operator==(const Value& other) const {
  if (is_number() && other.is_number()) {
    return AsNumber() == other.AsNumber();
  }
  if (is_string() != other.is_string()) return false;
  return AsString() == other.AsString();
}

bool Value::operator<(const Value& other) const {
  if (is_number()) {
    if (!other.is_number()) return true;  // numbers < strings
    return AsNumber() < other.AsNumber();
  }
  if (other.is_number()) return false;
  return AsString() < other.AsString();
}

size_t Value::Hash() const {
  if (is_number()) {
    // Ints and doubles with equal numeric value must hash alike.
    double d = AsNumber();
    return std::hash<double>()(d);
  }
  return std::hash<std::string>()(AsString());
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

ValueId ValuePool::Intern(const Value& v) {
  auto it = index_.find(v);
  if (it != index_.end()) return it->second;
  ValueId id = static_cast<ValueId>(values_.size());
  values_.push_back(v);
  index_.emplace(v, id);
  return id;
}

ValueId ValuePool::Lookup(const Value& v) const {
  auto it = index_.find(v);
  return it == index_.end() ? -1 : it->second;
}

std::string TupleToString(const Tuple& t) {
  std::string out = "(";
  for (size_t i = 0; i < t.size(); ++i) {
    if (i > 0) out += ", ";
    out += t[i].ToString();
  }
  out += ")";
  return out;
}

size_t TupleHash::operator()(const Tuple& t) const {
  size_t h = 1469598103934665603ull;
  for (const Value& v : t) {
    h ^= v.Hash();
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace whynot
