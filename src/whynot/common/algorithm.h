#ifndef WHYNOT_COMMON_ALGORITHM_H_
#define WHYNOT_COMMON_ALGORITHM_H_

#include <algorithm>
#include <vector>

namespace whynot {

/// Sorts `v` and drops duplicates — the canonical-set idiom used for
/// extensions, answer lists, and column caches throughout.
template <typename T>
void SortUnique(std::vector<T>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

}  // namespace whynot

#endif  // WHYNOT_COMMON_ALGORITHM_H_
