#ifndef WHYNOT_COMMON_PARALLEL_H_
#define WHYNOT_COMMON_PARALLEL_H_

#include <atomic>
#include <cstddef>
#include <functional>

namespace whynot::par {

/// The parallel execution layer shared by the sharded ontology warm-up and
/// the candidate fan-out of the explanation searches.
///
/// Contract:
///  * The pool is global and lazily started — no thread is ever spawned
///    until the first ParallelFor call that actually splits work, so
///    single-threaded programs pay nothing.
///  * `WHYNOT_THREADS` (environment) fixes the thread count; unset or 0
///    means the hardware concurrency. SetNumThreads overrides at runtime
///    (used by tests and benchmarks to sweep thread counts in-process).
///  * With 1 thread every entry point runs the body inline on the calling
///    thread — byte-identical behavior to a build without this layer.
///  * With more threads, work is split into index *blocks*; callers must
///    make results a pure function of the index (write into index-addressed
///    slots, then reduce serially in index order), so outputs never depend
///    on the thread count or the scheduling order. All call sites in this
///    codebase follow that discipline; see tests/parallel_determinism_test.
///  * Nested calls from inside a pool worker run inline (no pool re-entry,
///    no deadlock). Concurrent top-level calls from different application
///    threads serialize on the pool's single job slot — safe, though the
///    two regions do not overlap.

/// Current thread-count setting (>= 1). First call reads WHYNOT_THREADS.
int NumThreads();

/// Overrides the thread count (n <= 0 re-reads WHYNOT_THREADS / hardware).
/// Joins and respawns pool workers as needed; must not be called while a
/// parallel region is executing.
void SetNumThreads(int n);

/// Upper bound on the worker index passed to ParallelForWorker — the value
/// to size per-worker scratch arrays by. Equal to NumThreads().
int MaxWorkers();

/// True when called from inside a pool worker thread (nested regions run
/// inline there).
bool InParallelRegion();

/// Runs fn(begin, end) over a partition of [0, n). Serial (one inline call
/// fn(0, n)) when the pool has 1 thread or n <= grain; otherwise splits
/// into blocks of at least `grain` indices executed across the pool, with
/// the calling thread participating. Returns when all blocks finished.
void ParallelFor(size_t n, size_t grain,
                 const std::function<void(size_t, size_t)>& fn);

/// Same, but fn also receives the executing worker's index in
/// [0, MaxWorkers()) so call sites can keep per-worker scratch (caches,
/// buffers). Block-to-worker assignment is dynamic (work stealing); only
/// use the index for scratch whose contents never leak into results.
void ParallelForWorker(
    size_t n, size_t grain,
    const std::function<void(int worker, size_t begin, size_t end)>& fn);

/// Cooperative-stop variants: `stop` (may be null) is polled once per
/// block, at dispatch — a block that starts after the flag is set is
/// skipped entirely, and the serial inline path checks once up front.
/// Because whole index ranges may then never run, these are only for
/// regions whose partial output is *discarded* on stop (the execution-
/// control abandon path); deterministic merges must not observe which
/// blocks ran. Block bodies that want a faster reaction set the flag
/// themselves (it is the same flag they poll).
void ParallelFor(size_t n, size_t grain, const std::atomic<bool>* stop,
                 const std::function<void(size_t, size_t)>& fn);
void ParallelForWorker(
    size_t n, size_t grain, const std::atomic<bool>* stop,
    const std::function<void(int worker, size_t begin, size_t end)>& fn);

}  // namespace whynot::par

#endif  // WHYNOT_COMMON_PARALLEL_H_
