#ifndef WHYNOT_COMMON_SHARDED_CACHE_H_
#define WHYNOT_COMMON_SHARDED_CACHE_H_

#include <cstddef>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

namespace whynot {

/// A sharded read-mostly map with publish-after-wave semantics — the
/// storage layer of the shared concept-evaluation cache.
///
/// The engine's parallel stages alternate between *waves* (workers run
/// concurrently) and *serial points* (the deterministic merge between
/// waves). This container carries no locks at all; instead it relies on
/// the same protocol that makes the searches deterministic:
///
///  * During a wave the published maps are frozen. Workers call Find /
///    FindShared concurrently — pure reads of an unchanging
///    unordered_map, safe without synchronization. Misses are computed
///    into worker-local overlays, never into this container.
///  * At the serial point the merge thread drains the overlays in
///    linearization order (worker slot 0, 1, ... — a thread-independent
///    order) via Publish. First publish of a key wins; values are
///    shared_ptr so a losing duplicate stays alive in its overlay and
///    worker-held pointers never dangle.
///  * Entries are never removed individually (identity-keyed consumers —
///    the answer-cover bitmaps — require address stability); capacity
///    pressure rejects new publishes instead. Clear() is reserved for
///    serial rebuild points where every consumer is discarded too.
///
/// Hash-striped shards keep per-map bucket arrays small across
/// incremental publishes (rehashes touch one stripe, not the whole
/// table) and give Clear()/size() natural chunking.
template <typename Key, typename Value, typename Hasher>
class ShardedPublishCache {
 public:
  explicit ShardedPublishCache(size_t shards = 16)
      : shards_(shards == 0 ? 1 : shards) {}

  /// Wave-safe lookup: a borrowed pointer valid until Clear(). Returns
  /// nullptr on miss.
  const Value* Find(const Key& key) const {
    const Shard& shard = shards_[ShardOf(key)];
    auto it = shard.find(key);
    return it == shard.end() ? nullptr : it->second.get();
  }

  /// Wave-safe lookup returning shared ownership (the refcount bump is
  /// atomic) — for overlays that embed the value into entries of their
  /// own.
  std::shared_ptr<const Value> FindShared(const Key& key) const {
    const Shard& shard = shards_[ShardOf(key)];
    auto it = shard.find(key);
    return it == shard.end() ? nullptr : it->second;
  }

  /// Serial-point insert, first-publish-wins. Returns true iff `value`
  /// was installed (false: the key was already published; the caller's
  /// value stays owned by the caller).
  bool Publish(const Key& key, std::shared_ptr<const Value> value) {
    Shard& shard = shards_[ShardOf(key)];
    if (!shard.emplace(key, std::move(value)).second) return false;
    ++size_;
    return true;
  }

  size_t size() const { return size_; }

  /// Wave-safe emptiness probe. Overlays consult it before hashing a key
  /// against the published tier: `size_` only changes at serial points,
  /// so during a wave this is a read of a constant — and skipping the
  /// probe while the tier is empty keeps a cold cache's miss path almost
  /// free.
  bool empty() const { return size_ == 0; }

  /// Serial-only: drops every entry. Callers must have discarded all
  /// borrowed pointers and identity-keyed state first.
  void Clear() {
    for (Shard& shard : shards_) shard.clear();
    size_ = 0;
  }

  /// Approximate heap residency of the map structure itself (buckets and
  /// nodes; the pointed-to values are the caller's to account).
  size_t MemoryBytes() const {
    size_t bytes = sizeof(*this);
    for (const Shard& shard : shards_) {
      bytes += shard.bucket_count() * sizeof(void*) +
               shard.size() *
                   (sizeof(std::pair<const Key, std::shared_ptr<const Value>>) +
                    2 * sizeof(void*));
    }
    return bytes;
  }

 private:
  using Shard = std::unordered_map<Key, std::shared_ptr<const Value>, Hasher>;

  size_t ShardOf(const Key& key) const {
    return hasher_(key) % shards_.size();
  }

  Hasher hasher_;
  std::vector<Shard> shards_;
  size_t size_ = 0;  // mutated only at serial points (Publish/Clear)
};

}  // namespace whynot

#endif  // WHYNOT_COMMON_SHARDED_CACHE_H_
