#include "whynot/common/status.h"

namespace whynot {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace whynot
