#include "whynot/common/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace whynot::par {

namespace {

/// Set for the lifetime of a pool worker thread; nested parallel calls on
/// such a thread run inline instead of re-entering the pool.
thread_local bool t_in_worker = false;
/// Worker index of this thread (0 for the participating caller). Nested
/// inline regions report it so per-worker scratch slots stay owned by one
/// OS thread even under nesting.
thread_local int t_worker_index = 0;

/// Workers spawned beyond the caller; a job is one ParallelFor invocation.
/// All job bookkeeping is mutex-protected (the blocks themselves run
/// outside the lock): block grains are coarse by construction, so lock
/// traffic is a handful of acquisitions per block, and the mutex gives the
/// release/acquire ordering TSAN and the deterministic-merge callers rely
/// on (worker writes to result slots happen-before the caller's reduce).
class ThreadPool {
 public:
  static ThreadPool& Get() {
    static ThreadPool* pool = new ThreadPool();  // leaked: outlives statics
    return *pool;
  }

  int num_threads() {
    // Hot path: NumThreads() sits inside per-pivot / per-node loops, so
    // the settled value is one relaxed atomic load.
    int n = published_threads_.load(std::memory_order_relaxed);
    if (n > 0) return n;
    std::lock_guard<std::mutex> lock(config_mutex_);
    EnsureConfiguredLocked();
    return num_threads_;
  }

  void set_num_threads(int n) {
    std::lock_guard<std::mutex> lock(config_mutex_);
    if (n <= 0) {
      configured_ = false;  // re-read env / hardware on next use
      published_threads_.store(0, std::memory_order_relaxed);
      StopWorkersLocked();
      return;
    }
    configured_ = true;
    published_threads_.store(n, std::memory_order_relaxed);
    if (n == num_threads_) return;
    StopWorkersLocked();
    num_threads_ = n;
  }

  void Run(size_t nblocks,
           const std::function<void(int worker, size_t block)>& fn) {
    // One job at a time: the job state below is single-slot. Concurrent
    // top-level callers (two application threads each running a search)
    // serialize here — correct, just not overlapped.
    std::lock_guard<std::mutex> run_lock(run_mutex_);
    {
      std::lock_guard<std::mutex> lock(config_mutex_);
      EnsureConfiguredLocked();
      // Workers are spawned on first real use, not at configuration time.
      while (static_cast<int>(workers_.size()) < num_threads_ - 1) {
        int worker_index = static_cast<int>(workers_.size()) + 1;
        workers_.emplace_back([this, worker_index] { WorkerLoop(worker_index); });
      }
    }
    std::unique_lock<std::mutex> job_lock(job_mutex_);
    job_fn_ = &fn;
    job_next_ = 0;
    job_done_ = 0;
    job_blocks_ = nblocks;
    ++job_epoch_;
    job_cv_.notify_all();
    job_lock.unlock();

    // The caller participates as worker 0. It counts as inside the region
    // while draining blocks, so a nested ParallelFor from a block body
    // runs inline instead of re-entering the single-job state.
    t_in_worker = true;
    RunBlocks(0);
    t_in_worker = false;

    job_lock.lock();
    done_cv_.wait(job_lock, [this] { return job_done_ == job_blocks_; });
    job_fn_ = nullptr;
  }

 private:
  ThreadPool() = default;

  void EnsureConfiguredLocked() {
    if (configured_) return;
    int n = 0;
    if (const char* env = std::getenv("WHYNOT_THREADS")) {
      n = std::atoi(env);
    }
    if (n <= 0) {
      n = static_cast<int>(std::thread::hardware_concurrency());
    }
    num_threads_ = std::clamp(n, 1, 256);
    configured_ = true;
    published_threads_.store(num_threads_, std::memory_order_relaxed);
  }

  void StopWorkersLocked() {
    if (workers_.empty()) return;
    {
      std::lock_guard<std::mutex> lock(job_mutex_);
      shutdown_epoch_ = job_epoch_ + 1;
      ++job_epoch_;
      job_cv_.notify_all();
    }
    for (std::thread& t : workers_) t.join();
    workers_.clear();
    {
      std::lock_guard<std::mutex> lock(job_mutex_);
      shutdown_epoch_ = 0;
    }
  }

  void RunBlocks(int worker) {
    while (true) {
      size_t block;
      {
        std::lock_guard<std::mutex> lock(job_mutex_);
        if (job_fn_ == nullptr || job_next_ >= job_blocks_) return;
        block = job_next_++;
      }
      (*job_fn_)(worker, block);
      {
        std::lock_guard<std::mutex> lock(job_mutex_);
        if (++job_done_ == job_blocks_) done_cv_.notify_all();
      }
    }
  }

  void WorkerLoop(int worker) {
    t_in_worker = true;
    t_worker_index = worker;
    uint64_t seen_epoch = 0;
    while (true) {
      {
        std::unique_lock<std::mutex> lock(job_mutex_);
        job_cv_.wait(lock, [&] { return job_epoch_ != seen_epoch; });
        seen_epoch = job_epoch_;
        if (seen_epoch == shutdown_epoch_) return;
      }
      RunBlocks(worker);
    }
  }

  std::mutex run_mutex_;  // serializes top-level Run calls
  std::mutex config_mutex_;
  bool configured_ = false;
  int num_threads_ = 1;
  std::atomic<int> published_threads_{0};  // 0 until configured
  std::vector<std::thread> workers_;

  std::mutex job_mutex_;
  std::condition_variable job_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int, size_t)>* job_fn_ = nullptr;
  size_t job_next_ = 0;
  size_t job_done_ = 0;
  size_t job_blocks_ = 0;
  uint64_t job_epoch_ = 0;
  uint64_t shutdown_epoch_ = 0;
};

}  // namespace

int NumThreads() { return ThreadPool::Get().num_threads(); }

void SetNumThreads(int n) { ThreadPool::Get().set_num_threads(n); }

int MaxWorkers() { return NumThreads(); }

bool InParallelRegion() { return t_in_worker; }

namespace {

/// Shared splitting logic. `fn` is any callable taking
/// (worker, begin, end); the serial fast path costs one virtual-free
/// inline call — no pool, no allocation.
template <typename Fn>
void ParallelForImpl(size_t n, size_t grain, const std::atomic<bool>* stop,
                     const Fn& fn) {
  if (n == 0) return;
  if (stop != nullptr && stop->load(std::memory_order_relaxed)) return;
  if (grain == 0) grain = 1;
  int threads = NumThreads();
  if (threads <= 1 || n <= grain || InParallelRegion()) {
    // Inline: report the executing thread's worker index, not 0 — a
    // nested region on pool worker w must keep using w's scratch slot.
    fn(t_worker_index, size_t{0}, n);
    return;
  }
  // At least `grain` indices per block, at most 4 blocks per thread (keeps
  // dynamic stealing useful on skewed workloads without flooding the job
  // queue with tiny blocks).
  size_t max_blocks = static_cast<size_t>(threads) * 4;
  size_t nblocks = std::min(max_blocks, (n + grain - 1) / grain);
  size_t block_size = (n + nblocks - 1) / nblocks;
  nblocks = (n + block_size - 1) / block_size;
  if (nblocks <= 1) {
    fn(0, size_t{0}, n);
    return;
  }
  ThreadPool::Get().Run(nblocks, [&](int worker, size_t block) {
    // Cooperative stop: blocks dispatched after the flag rises are
    // skipped; already-running blocks finish (their output is discarded
    // by the caller on the abandon path).
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) return;
    size_t begin = block * block_size;
    size_t end = std::min(n, begin + block_size);
    fn(worker, begin, end);
  });
}

}  // namespace

void ParallelForWorker(
    size_t n, size_t grain,
    const std::function<void(int worker, size_t begin, size_t end)>& fn) {
  ParallelForImpl(n, grain, nullptr, fn);
}

void ParallelFor(size_t n, size_t grain,
                 const std::function<void(size_t, size_t)>& fn) {
  ParallelForImpl(n, grain, nullptr,
                  [&fn](int, size_t begin, size_t end) { fn(begin, end); });
}

void ParallelForWorker(
    size_t n, size_t grain, const std::atomic<bool>* stop,
    const std::function<void(int worker, size_t begin, size_t end)>& fn) {
  ParallelForImpl(n, grain, stop, fn);
}

void ParallelFor(size_t n, size_t grain, const std::atomic<bool>* stop,
                 const std::function<void(size_t, size_t)>& fn) {
  ParallelForImpl(n, grain, stop,
                  [&fn](int, size_t begin, size_t end) { fn(begin, end); });
}

}  // namespace whynot::par
