#ifndef WHYNOT_COMMON_DENSE_BITMAP_H_
#define WHYNOT_COMMON_DENSE_BITMAP_H_

#include <cstdint>
#include <vector>

#include "whynot/common/value.h"

namespace whynot {

// ---- representation thresholds -------------------------------------------
//
// Every layer that chooses between sparse and dense set forms shares these
// measured constants (they used to live independently in dense_bitmap.cc
// and ext_set.cc, which is how they drift apart).

/// Minimum word count for the SIMD lanes: below 8 words (512 bits) the
/// runtime-dispatch overhead plus the scalar tail dominate — the plain word
/// loop is already a few cycles total. Measured on the PR-1 kernel
/// microbenches (bench_bitmap) on both AVX2 and NEON hosts.
inline constexpr size_t kSimdMinWords = 8;

/// Dense-mirror crossover: a dense form costs universe_words * 8 bytes, a
/// sorted-id array ~4 bytes per element with log-time probes. The PR-1
/// ExtSet measurements put the size/speed crossover near 8 universe words
/// per element — sparser than that, dense is pure waste; denser, it is both
/// smaller and faster.
inline constexpr size_t kDenseMirrorMaxWordsPerElement = 8;

/// Universes at or below this many words always take the dense form: the
/// mirror costs at most 128 bytes and probes are one shift+mask, so the
/// per-element heuristic isn't worth evaluating.
inline constexpr size_t kDenseMirrorMinWords = 16;

/// A dense bitmap over ValueIds, packed into 64-bit words. The word-parallel
/// kernel shared by onto::ExtSet and the relational column indexes: Contains
/// is one shift+mask, SubsetOf and Intersect process 64 ids per instruction.
/// Words past the stored prefix are implicitly zero, so bitmaps sized for
/// different universes compose.
class DenseBitmap {
 public:
  DenseBitmap() = default;

  /// Bitmap of `sorted_ids` (all non-negative), sized to at least
  /// `universe` bits (0 = size from the largest id).
  explicit DenseBitmap(const std::vector<ValueId>& sorted_ids,
                       int32_t universe = 0);

  /// The full prefix {0, ..., n-1}: n ones, trailing bits of the last
  /// word zero (so Count/popcount stay exact).
  static DenseBitmap AllSet(int32_t n);

  bool empty() const { return words_.empty(); }
  size_t num_words() const { return words_.size(); }
  const std::vector<uint64_t>& words() const { return words_; }

  /// True iff any bit is set (no popcount, early exit).
  bool Any() const {
    for (uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  bool Test(ValueId id) const {
    size_t w = static_cast<size_t>(id) / 64;
    if (w >= words_.size()) return false;
    return (words_[w] >> (static_cast<size_t>(id) % 64)) & 1u;
  }

  /// Sets bit `id`, growing the word vector as needed (incremental index
  /// maintenance appends distinct ids without a full rebuild).
  void Set(ValueId id) {
    size_t w = static_cast<size_t>(id) / 64;
    if (w >= words_.size()) words_.resize(w + 1, 0);
    words_[w] |= uint64_t{1} << (static_cast<size_t>(id) % 64);
  }

  /// Word-parallel containment: every bit of *this is set in `other`.
  bool SubsetOf(const DenseBitmap& other) const;

  /// Word-parallel intersection.
  static DenseBitmap Intersect(const DenseBitmap& a, const DenseBitmap& b);

  /// Raw word-level in-place AND through the same runtime SIMD dispatch:
  /// acc[i] &= words[i] for i < n. Aliasing is fine. For callers that keep
  /// their own word buffers (the explain layer's running cover ANDs).
  static void AndWordsInPlace(uint64_t* acc, const uint64_t* words, size_t n);

  /// Out-of-place word AND through the dispatch: out[i] = a[i] & b[i].
  /// `out` may alias either input.
  static void AndWordsTo(const uint64_t* a, const uint64_t* b, uint64_t* out,
                         size_t n);

  /// Word-parallel containment over raw buffers: no bit of a[0..n) is
  /// missing from b. The raw-word form of SubsetOf, for containers that
  /// manage their own word storage (HybridBitmap dense chunks).
  static bool SubsetOfWords(const uint64_t* a, const uint64_t* b, size_t n);

  /// popcount over raw words through the runtime SIMD dispatch.
  static size_t PopcountWords(const uint64_t* words, size_t n);

  /// Fused popcount(a ∧ b) without materializing the intermediate words —
  /// the counting-containment form of the answer-cover kernel ANDs two
  /// covers and immediately popcounts, so the AND result never needs a
  /// buffer. One pass, SIMD lanes AND in-register and feed the popcount
  /// directly.
  static size_t AndCountWords(const uint64_t* a, const uint64_t* b, size_t n);

  /// Number of set bits (popcount over words).
  size_t Count() const;

  /// The set bits as a sorted id vector.
  std::vector<ValueId> ToIds() const;

  /// Heap + object bytes this bitmap occupies (the BENCH memory column
  /// aggregates these through every container layer).
  size_t MemoryBytes() const {
    return sizeof(*this) + words_.capacity() * sizeof(uint64_t);
  }

 private:
  std::vector<uint64_t> words_;
};

}  // namespace whynot

#endif  // WHYNOT_COMMON_DENSE_BITMAP_H_
