#ifndef WHYNOT_COMMON_DENSE_BITMAP_H_
#define WHYNOT_COMMON_DENSE_BITMAP_H_

#include <cstdint>
#include <vector>

#include "whynot/common/value.h"

namespace whynot {

/// A dense bitmap over ValueIds, packed into 64-bit words. The word-parallel
/// kernel shared by onto::ExtSet and the relational column indexes: Contains
/// is one shift+mask, SubsetOf and Intersect process 64 ids per instruction.
/// Words past the stored prefix are implicitly zero, so bitmaps sized for
/// different universes compose.
class DenseBitmap {
 public:
  DenseBitmap() = default;

  /// Bitmap of `sorted_ids` (all non-negative), sized to at least
  /// `universe` bits (0 = size from the largest id).
  explicit DenseBitmap(const std::vector<ValueId>& sorted_ids,
                       int32_t universe = 0);

  /// The full prefix {0, ..., n-1}: n ones, trailing bits of the last
  /// word zero (so Count/popcount stay exact).
  static DenseBitmap AllSet(int32_t n);

  bool empty() const { return words_.empty(); }
  size_t num_words() const { return words_.size(); }
  const std::vector<uint64_t>& words() const { return words_; }

  /// True iff any bit is set (no popcount, early exit).
  bool Any() const {
    for (uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  bool Test(ValueId id) const {
    size_t w = static_cast<size_t>(id) / 64;
    if (w >= words_.size()) return false;
    return (words_[w] >> (static_cast<size_t>(id) % 64)) & 1u;
  }

  /// Sets bit `id`, growing the word vector as needed (incremental index
  /// maintenance appends distinct ids without a full rebuild).
  void Set(ValueId id) {
    size_t w = static_cast<size_t>(id) / 64;
    if (w >= words_.size()) words_.resize(w + 1, 0);
    words_[w] |= uint64_t{1} << (static_cast<size_t>(id) % 64);
  }

  /// Word-parallel containment: every bit of *this is set in `other`.
  bool SubsetOf(const DenseBitmap& other) const;

  /// Word-parallel intersection.
  static DenseBitmap Intersect(const DenseBitmap& a, const DenseBitmap& b);

  /// Raw word-level in-place AND through the same runtime SIMD dispatch:
  /// acc[i] &= words[i] for i < n. Aliasing is fine. For callers that keep
  /// their own word buffers (the explain layer's running cover ANDs).
  static void AndWordsInPlace(uint64_t* acc, const uint64_t* words, size_t n);

  /// popcount over raw words through the runtime SIMD dispatch.
  static size_t PopcountWords(const uint64_t* words, size_t n);

  /// Fused popcount(a ∧ b) without materializing the intermediate words —
  /// the counting-containment form of the answer-cover kernel ANDs two
  /// covers and immediately popcounts, so the AND result never needs a
  /// buffer. One pass, SIMD lanes AND in-register and feed the popcount
  /// directly.
  static size_t AndCountWords(const uint64_t* a, const uint64_t* b, size_t n);

  /// Number of set bits (popcount over words).
  size_t Count() const;

  /// The set bits as a sorted id vector.
  std::vector<ValueId> ToIds() const;

 private:
  std::vector<uint64_t> words_;
};

}  // namespace whynot

#endif  // WHYNOT_COMMON_DENSE_BITMAP_H_
