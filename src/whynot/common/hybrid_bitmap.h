#ifndef WHYNOT_COMMON_HYBRID_BITMAP_H_
#define WHYNOT_COMMON_HYBRID_BITMAP_H_

#include <cstdint>
#include <vector>

#include "whynot/common/dense_bitmap.h"
#include "whynot/common/value.h"

namespace whynot {

/// Which physical representation the freeze points pick for long-lived
/// read-mostly sets (ExtSet mirrors, ls::Extension universe bitmaps,
/// answer-cover rows, column distinct filters). kAdaptive applies the
/// measured density rule (ChooseHybridRep); the force modes exist for the
/// representation-equivalence sweep, which runs the whole engine under both
/// forms and asserts bit-identical search output at every thread count.
enum class SetRepPolicy : int {
  kAdaptive = 0,
  kForceDense = 1,
  kForceHybrid = 2,
};

SetRepPolicy GetSetRepPolicy();
void SetSetRepPolicy(SetRepPolicy policy);

/// True when a frozen set of `cardinality` ids over a `universe_words`-word
/// universe should take the chunked hybrid form instead of a flat dense
/// bitmap. The adaptive rule is the complement of the ExtSet dense-mirror
/// heuristic: dense costs universe_words * 8 bytes, the sorted-array side
/// of a hybrid ~2 bytes per element, so past kDenseMirrorMaxWordsPerElement
/// universe words per element the dense form is pure waste. Universes at or
/// below kDenseMirrorMinWords words never convert — the dense form costs at
/// most 128 bytes and probes are one shift+mask.
bool ChooseHybridRep(size_t cardinality, size_t universe_words);

/// Roaring-style chunked set (Chambi et al., "Better bitmap performance
/// with Roaring bitmaps"): the id space splits into 2^16-bit chunks and
/// each non-empty chunk stores either a sorted uint16 array of low bits
/// (sparse) or a dense word block (dense), chosen per chunk at build time
/// at the 2-bytes-per-element vs 8-bytes-per-word crossover (dense iff
/// 2 * card > 8 * words). Dense×dense chunk pairs dispatch to the same
/// AVX2/NEON/scalar lanes as DenseBitmap; sparse×sparse uses linear or
/// galloping merge; sparse×dense probes words. Immutable after build: this
/// is the freeze-time representation — mutation-phase code keeps the flat
/// forms and converts only sets that will be read many times.
class HybridBitmap {
 public:
  /// Chunk geometry: 2^16 bits = 1024 words = 8 KiB per full dense chunk,
  /// so a chunk's low bits fit exactly in a uint16.
  static constexpr uint32_t kChunkBits = 1u << 16;
  static constexpr size_t kChunkWords = kChunkBits / 64;

  HybridBitmap() = default;

  /// Build from sorted non-negative ids over at least `universe` bits
  /// (0 = size from the largest id).
  static HybridBitmap FromSorted(const std::vector<ValueId>& sorted_ids,
                                 int64_t universe = 0);

  /// Build from a dense word buffer (universe = n * 64 bits).
  static HybridBitmap FromWords(const uint64_t* words, size_t n);

  bool empty() const { return total_card_ == 0; }
  bool Any() const { return total_card_ != 0; }
  /// Total cardinality (precomputed at build — O(1)).
  size_t Count() const { return total_card_; }
  /// Word length of the conceptual dense equivalent.
  size_t num_words() const { return num_words_; }

  bool Test(ValueId id) const;

  /// Containment: every bit of *this set in `other`.
  bool SubsetOf(const HybridBitmap& other) const;

  static HybridBitmap Intersect(const HybridBitmap& a, const HybridBitmap& b);

  /// Fused popcount(a ∧ b) — the hybrid form of AndCountWords.
  static size_t AndCount(const HybridBitmap& a, const HybridBitmap& b);

  /// True iff a ∧ b is non-empty (early exit).
  static bool AnyAnd(const HybridBitmap& a, const HybridBitmap& b);

  // ---- mixed hybrid × raw-word kernels. The explain layer's m-way AND
  // keeps dense word accumulators; hybrid operands fold into them through
  // these without materializing a dense copy of the hybrid side. ----

  /// out[i] = in[i] & this, for i < n. `out` may alias `in` (the running-
  /// cover accumulators AND in place).
  void AndWith(const uint64_t* in, uint64_t* out, size_t n) const;

  /// popcount(words ∧ this) over the first n words.
  size_t AndCountWith(const uint64_t* words, size_t n) const;

  /// True iff words ∧ this has any set bit in the first n words.
  bool AnyAndWith(const uint64_t* words, size_t n) const;

  /// Materialize into a dense word buffer: out[0..n) = this (bits past the
  /// set's universe zeroed).
  void DecodeTo(uint64_t* out, size_t n) const;

  std::vector<ValueId> ToIds() const;

  /// Visit set ids in ascending order until `fn` returns false. Returns
  /// false iff stopped early. The sparse-driven side of the mixed m-way
  /// AND: iterate the smallest operand's elements, probe the rest.
  template <typename Fn>
  bool ForEachIdUntil(Fn&& fn) const;

  /// Heap + object bytes actually resident.
  size_t MemoryBytes() const {
    return sizeof(*this) + containers_.capacity() * sizeof(Container) +
           sparse_.capacity() * sizeof(uint16_t) +
           dense_.capacity() * sizeof(uint64_t);
  }

  /// Bytes the flat DenseBitmap over the same universe would occupy — the
  /// counterfactual the BENCH memory column reports residency against.
  size_t DenseEquivalentBytes() const {
    return sizeof(DenseBitmap) + num_words_ * sizeof(uint64_t);
  }

  /// Containers currently stored dense (exposed for tests/stats).
  size_t NumDenseContainers() const;
  size_t NumContainers() const { return containers_.size(); }

 private:
  struct Container {
    uint32_t key;     // chunk index: ids in [key*kChunkBits, …+kChunkBits)
    uint32_t card;    // set bits in this chunk (always >= 1)
    uint32_t offset;  // into sparse_ (uint16 lows) or dense_ (words)
    uint8_t dense;    // 1 = word block, 0 = sorted array
  };

  // Per-chunk representation rule: dense iff the word block is smaller
  // than the uint16 array (2 * card > 8 * words, i.e. card > 4 * words —
  // 4096 elements for a full chunk, the classic Roaring threshold).
  static bool ChunkDense(size_t card, size_t words) {
    return card * 2 > words * 8;
  }

  // Word length of a dense container for chunk `key`: full kChunkWords
  // except possibly the final chunk of the universe.
  size_t ContainerWords(uint32_t key) const;

  const Container* FindContainer(uint32_t key) const;

  void AppendChunkFromWords(uint32_t key, const uint64_t* words, size_t nwords,
                            size_t card);
  void AppendChunkFromLows(uint32_t key, const uint16_t* lows, size_t n);

  std::vector<Container> containers_;  // sorted by key
  std::vector<uint16_t> sparse_;       // arena for sorted-array containers
  std::vector<uint64_t> dense_;        // arena for word-block containers
  size_t num_words_ = 0;               // dense-equivalent word length
  size_t total_card_ = 0;
};

template <typename Fn>
bool HybridBitmap::ForEachIdUntil(Fn&& fn) const {
  for (const Container& c : containers_) {
    uint64_t base = static_cast<uint64_t>(c.key) * kChunkBits;
    if (c.dense) {
      size_t nw = ContainerWords(c.key);
      for (size_t i = 0; i < nw; ++i) {
        uint64_t word = dense_[c.offset + i];
        while (word != 0) {
          int bit = __builtin_ctzll(word);
          if (!fn(static_cast<ValueId>(base + i * 64 +
                                       static_cast<size_t>(bit)))) {
            return false;
          }
          word &= word - 1;
        }
      }
    } else {
      for (uint32_t i = 0; i < c.card; ++i) {
        if (!fn(static_cast<ValueId>(base + sparse_[c.offset + i]))) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace whynot

#endif  // WHYNOT_COMMON_HYBRID_BITMAP_H_
