#ifndef WHYNOT_COMMON_STRINGS_H_
#define WHYNOT_COMMON_STRINGS_H_

#include <string>
#include <vector>

namespace whynot {

/// Joins `parts` with `sep`: Join({"a","b"}, ", ") == "a, b".
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Splits on a single character; empty fields are kept.
std::vector<std::string> Split(const std::string& s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string Trim(const std::string& s);

/// True if `s` begins with `prefix`.
bool StartsWith(const std::string& s, const std::string& prefix);

}  // namespace whynot

#endif  // WHYNOT_COMMON_STRINGS_H_
