#include "whynot/common/hybrid_bitmap.h"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace whynot {

namespace {

std::atomic<int> g_set_rep_policy{static_cast<int>(SetRepPolicy::kAdaptive)};

size_t WordsForBits(int64_t bits) {
  return static_cast<size_t>((bits + 63) / 64);
}

// Sorted-uint16 intersection helpers. When one side is much smaller,
// galloping (binary-search each small element) beats the linear merge; the
// 32x ratio is where log2(nb) probes win over walking nb elements.
constexpr size_t kGallopRatio = 32;

void IntersectLows(const uint16_t* a, size_t na, const uint16_t* b, size_t nb,
                   std::vector<uint16_t>* out) {
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (na * kGallopRatio < nb) {
    for (size_t i = 0; i < na; ++i) {
      if (std::binary_search(b, b + nb, a[i])) out->push_back(a[i]);
    }
    return;
  }
  size_t i = 0, j = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out->push_back(a[i]);
      ++i;
      ++j;
    }
  }
}

size_t CountIntersectLows(const uint16_t* a, size_t na, const uint16_t* b,
                          size_t nb) {
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  size_t count = 0;
  if (na * kGallopRatio < nb) {
    for (size_t i = 0; i < na; ++i) {
      if (std::binary_search(b, b + nb, a[i])) ++count;
    }
    return count;
  }
  size_t i = 0, j = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

bool AnyIntersectLows(const uint16_t* a, size_t na, const uint16_t* b,
                      size_t nb) {
  if (na > nb) {
    std::swap(a, b);
    std::swap(na, nb);
  }
  if (na * kGallopRatio < nb) {
    for (size_t i = 0; i < na; ++i) {
      if (std::binary_search(b, b + nb, a[i])) return true;
    }
    return false;
  }
  size_t i = 0, j = 0;
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace

SetRepPolicy GetSetRepPolicy() {
  return static_cast<SetRepPolicy>(
      g_set_rep_policy.load(std::memory_order_relaxed));
}

void SetSetRepPolicy(SetRepPolicy policy) {
  g_set_rep_policy.store(static_cast<int>(policy), std::memory_order_relaxed);
}

bool ChooseHybridRep(size_t cardinality, size_t universe_words) {
  switch (GetSetRepPolicy()) {
    case SetRepPolicy::kForceDense:
      return false;
    case SetRepPolicy::kForceHybrid:
      return true;
    case SetRepPolicy::kAdaptive:
      break;
  }
  if (universe_words <= kDenseMirrorMinWords) return false;
  return universe_words >
         kDenseMirrorMaxWordsPerElement * std::max<size_t>(cardinality, 1);
}

size_t HybridBitmap::ContainerWords(uint32_t key) const {
  size_t base = static_cast<size_t>(key) * kChunkWords;
  assert(base < num_words_);
  return std::min(kChunkWords, num_words_ - base);
}

const HybridBitmap::Container* HybridBitmap::FindContainer(uint32_t key) const {
  auto it = std::lower_bound(
      containers_.begin(), containers_.end(), key,
      [](const Container& c, uint32_t k) { return c.key < k; });
  if (it == containers_.end() || it->key != key) return nullptr;
  return &*it;
}

void HybridBitmap::AppendChunkFromWords(uint32_t key, const uint64_t* words,
                                        size_t nwords, size_t card) {
  if (card == 0) return;
  Container c;
  c.key = key;
  c.card = static_cast<uint32_t>(card);
  if (ChunkDense(card, nwords)) {
    c.dense = 1;
    c.offset = static_cast<uint32_t>(dense_.size());
    dense_.insert(dense_.end(), words, words + nwords);
  } else {
    c.dense = 0;
    c.offset = static_cast<uint32_t>(sparse_.size());
    for (size_t w = 0; w < nwords; ++w) {
      uint64_t word = words[w];
      while (word != 0) {
        int bit = __builtin_ctzll(word);
        sparse_.push_back(
            static_cast<uint16_t>(w * 64 + static_cast<size_t>(bit)));
        word &= word - 1;
      }
    }
  }
  containers_.push_back(c);
  total_card_ += card;
}

void HybridBitmap::AppendChunkFromLows(uint32_t key, const uint16_t* lows,
                                       size_t n) {
  if (n == 0) return;
  size_t cw = ContainerWords(key);
  Container c;
  c.key = key;
  c.card = static_cast<uint32_t>(n);
  if (ChunkDense(n, cw)) {
    c.dense = 1;
    c.offset = static_cast<uint32_t>(dense_.size());
    dense_.resize(dense_.size() + cw, 0);
    uint64_t* words = dense_.data() + c.offset;
    for (size_t i = 0; i < n; ++i) {
      words[lows[i] / 64] |= uint64_t{1} << (lows[i] % 64);
    }
  } else {
    c.dense = 0;
    c.offset = static_cast<uint32_t>(sparse_.size());
    sparse_.insert(sparse_.end(), lows, lows + n);
  }
  containers_.push_back(c);
  total_card_ += n;
}

HybridBitmap HybridBitmap::FromSorted(const std::vector<ValueId>& sorted_ids,
                                      int64_t universe) {
  HybridBitmap out;
  int64_t max_id = sorted_ids.empty() ? -1 : sorted_ids.back();
  if (universe <= max_id) universe = max_id + 1;
  out.num_words_ = WordsForBits(universe);
  std::vector<uint16_t> lows;
  size_t i = 0;
  while (i < sorted_ids.size()) {
    uint32_t key = static_cast<uint32_t>(sorted_ids[i]) / kChunkBits;
    lows.clear();
    while (i < sorted_ids.size() &&
           static_cast<uint32_t>(sorted_ids[i]) / kChunkBits == key) {
      assert(sorted_ids[i] >= 0);
      lows.push_back(static_cast<uint16_t>(
          static_cast<uint32_t>(sorted_ids[i]) % kChunkBits));
      ++i;
    }
    out.AppendChunkFromLows(key, lows.data(), lows.size());
  }
  return out;
}

HybridBitmap HybridBitmap::FromWords(const uint64_t* words, size_t n) {
  HybridBitmap out;
  out.num_words_ = n;
  for (size_t w0 = 0; w0 < n; w0 += kChunkWords) {
    size_t cw = std::min(kChunkWords, n - w0);
    size_t card = DenseBitmap::PopcountWords(words + w0, cw);
    if (card != 0) {
      out.AppendChunkFromWords(static_cast<uint32_t>(w0 / kChunkWords),
                               words + w0, cw, card);
    }
  }
  return out;
}

bool HybridBitmap::Test(ValueId id) const {
  if (id < 0) return false;
  uint32_t key = static_cast<uint32_t>(id) / kChunkBits;
  const Container* c = FindContainer(key);
  if (c == nullptr) return false;
  uint32_t low = static_cast<uint32_t>(id) % kChunkBits;
  if (c->dense) {
    size_t w = low / 64;
    if (w >= ContainerWords(key)) return false;
    return (dense_[c->offset + w] >> (low % 64)) & 1u;
  }
  const uint16_t* begin = sparse_.data() + c->offset;
  return std::binary_search(begin, begin + c->card,
                            static_cast<uint16_t>(low));
}

bool HybridBitmap::SubsetOf(const HybridBitmap& other) const {
  auto bi = other.containers_.begin();
  for (const Container& a : containers_) {
    while (bi != other.containers_.end() && bi->key < a.key) ++bi;
    if (bi == other.containers_.end() || bi->key != a.key) return false;
    const Container& b = *bi;
    if (a.card > b.card) return false;
    size_t wa = ContainerWords(a.key);
    size_t wb = other.ContainerWords(b.key);
    const uint64_t* aw = a.dense ? dense_.data() + a.offset : nullptr;
    const uint64_t* bw = b.dense ? other.dense_.data() + b.offset : nullptr;
    const uint16_t* al = a.dense ? nullptr : sparse_.data() + a.offset;
    const uint16_t* bl = b.dense ? nullptr : other.sparse_.data() + b.offset;
    if (a.dense && b.dense) {
      size_t common = std::min(wa, wb);
      if (!DenseBitmap::SubsetOfWords(aw, bw, common)) return false;
      for (size_t w = common; w < wa; ++w) {
        if (aw[w] != 0) return false;
      }
    } else if (!a.dense && b.dense) {
      for (uint32_t i = 0; i < a.card; ++i) {
        size_t w = al[i] / 64;
        if (w >= wb || !((bw[w] >> (al[i] % 64)) & 1u)) return false;
      }
    } else if (!a.dense && !b.dense) {
      if (!std::includes(bl, bl + b.card, al, al + a.card)) return false;
    } else {  // dense a inside sparse b — only possible across universes
      for (size_t w = 0; w < wa; ++w) {
        uint64_t word = aw[w];
        while (word != 0) {
          int bit = __builtin_ctzll(word);
          uint16_t low =
              static_cast<uint16_t>(w * 64 + static_cast<size_t>(bit));
          if (!std::binary_search(bl, bl + b.card, low)) return false;
          word &= word - 1;
        }
      }
    }
  }
  return true;
}

HybridBitmap HybridBitmap::Intersect(const HybridBitmap& a,
                                     const HybridBitmap& b) {
  HybridBitmap out;
  out.num_words_ = std::min(a.num_words_, b.num_words_);
  std::vector<uint64_t> scratch;
  std::vector<uint16_t> lows;
  auto ai = a.containers_.begin();
  auto bi = b.containers_.begin();
  while (ai != a.containers_.end() && bi != b.containers_.end()) {
    if (ai->key < bi->key) {
      ++ai;
      continue;
    }
    if (bi->key < ai->key) {
      ++bi;
      continue;
    }
    uint32_t key = ai->key;
    size_t cw = out.ContainerWords(key);
    if (ai->dense && bi->dense) {
      scratch.resize(cw);
      DenseBitmap::AndWordsTo(a.dense_.data() + ai->offset,
                              b.dense_.data() + bi->offset, scratch.data(),
                              cw);
      size_t card = DenseBitmap::PopcountWords(scratch.data(), cw);
      out.AppendChunkFromWords(key, scratch.data(), cw, card);
    } else if (!ai->dense && !bi->dense) {
      lows.clear();
      IntersectLows(a.sparse_.data() + ai->offset, ai->card,
                    b.sparse_.data() + bi->offset, bi->card, &lows);
      out.AppendChunkFromLows(key, lows.data(), lows.size());
    } else {
      const uint16_t* sl =
          ai->dense ? b.sparse_.data() + bi->offset : a.sparse_.data() + ai->offset;
      uint32_t sn = ai->dense ? bi->card : ai->card;
      const uint64_t* dw =
          ai->dense ? a.dense_.data() + ai->offset : b.dense_.data() + bi->offset;
      size_t dn = ai->dense ? a.ContainerWords(key) : b.ContainerWords(key);
      lows.clear();
      for (uint32_t i = 0; i < sn; ++i) {
        size_t w = sl[i] / 64;
        if (w < dn && ((dw[w] >> (sl[i] % 64)) & 1u)) lows.push_back(sl[i]);
      }
      out.AppendChunkFromLows(key, lows.data(), lows.size());
    }
    ++ai;
    ++bi;
  }
  return out;
}

size_t HybridBitmap::AndCount(const HybridBitmap& a, const HybridBitmap& b) {
  size_t count = 0;
  auto ai = a.containers_.begin();
  auto bi = b.containers_.begin();
  while (ai != a.containers_.end() && bi != b.containers_.end()) {
    if (ai->key < bi->key) {
      ++ai;
      continue;
    }
    if (bi->key < ai->key) {
      ++bi;
      continue;
    }
    uint32_t key = ai->key;
    if (ai->dense && bi->dense) {
      size_t cw = std::min(a.ContainerWords(key), b.ContainerWords(key));
      count += DenseBitmap::AndCountWords(a.dense_.data() + ai->offset,
                                          b.dense_.data() + bi->offset, cw);
    } else if (!ai->dense && !bi->dense) {
      count += CountIntersectLows(a.sparse_.data() + ai->offset, ai->card,
                                  b.sparse_.data() + bi->offset, bi->card);
    } else {
      const uint16_t* sl =
          ai->dense ? b.sparse_.data() + bi->offset : a.sparse_.data() + ai->offset;
      uint32_t sn = ai->dense ? bi->card : ai->card;
      const uint64_t* dw =
          ai->dense ? a.dense_.data() + ai->offset : b.dense_.data() + bi->offset;
      size_t dn = ai->dense ? a.ContainerWords(key) : b.ContainerWords(key);
      for (uint32_t i = 0; i < sn; ++i) {
        size_t w = sl[i] / 64;
        if (w < dn && ((dw[w] >> (sl[i] % 64)) & 1u)) ++count;
      }
    }
    ++ai;
    ++bi;
  }
  return count;
}

bool HybridBitmap::AnyAnd(const HybridBitmap& a, const HybridBitmap& b) {
  auto ai = a.containers_.begin();
  auto bi = b.containers_.begin();
  while (ai != a.containers_.end() && bi != b.containers_.end()) {
    if (ai->key < bi->key) {
      ++ai;
      continue;
    }
    if (bi->key < ai->key) {
      ++bi;
      continue;
    }
    uint32_t key = ai->key;
    if (ai->dense && bi->dense) {
      size_t cw = std::min(a.ContainerWords(key), b.ContainerWords(key));
      const uint64_t* aw = a.dense_.data() + ai->offset;
      const uint64_t* bw = b.dense_.data() + bi->offset;
      for (size_t w = 0; w < cw; ++w) {
        if ((aw[w] & bw[w]) != 0) return true;
      }
    } else if (!ai->dense && !bi->dense) {
      if (AnyIntersectLows(a.sparse_.data() + ai->offset, ai->card,
                           b.sparse_.data() + bi->offset, bi->card)) {
        return true;
      }
    } else {
      const uint16_t* sl =
          ai->dense ? b.sparse_.data() + bi->offset : a.sparse_.data() + ai->offset;
      uint32_t sn = ai->dense ? bi->card : ai->card;
      const uint64_t* dw =
          ai->dense ? a.dense_.data() + ai->offset : b.dense_.data() + bi->offset;
      size_t dn = ai->dense ? a.ContainerWords(key) : b.ContainerWords(key);
      for (uint32_t i = 0; i < sn; ++i) {
        size_t w = sl[i] / 64;
        if (w < dn && ((dw[w] >> (sl[i] % 64)) & 1u)) return true;
      }
    }
    ++ai;
    ++bi;
  }
  return false;
}

void HybridBitmap::AndWith(const uint64_t* in, uint64_t* out, size_t n) const {
  size_t w = 0;  // next word of `out` to produce
  for (const Container& c : containers_) {
    size_t w0 = static_cast<size_t>(c.key) * kChunkWords;
    if (w0 >= n) break;
    for (; w < w0; ++w) out[w] = 0;
    size_t cw = std::min(ContainerWords(c.key), n - w0);
    if (c.dense) {
      DenseBitmap::AndWordsTo(in + w0, dense_.data() + c.offset, out + w0, cw);
    } else {
      // Per-word mask assembly keeps the in-place case (out == in) safe:
      // in[w0+i] is read before out[w0+i] is written.
      const uint16_t* lo = sparse_.data() + c.offset;
      const uint16_t* end = lo + c.card;
      for (size_t i = 0; i < cw; ++i) {
        uint64_t mask = 0;
        uint32_t hi = static_cast<uint32_t>((i + 1) * 64);
        for (; lo != end && *lo < hi; ++lo) {
          mask |= uint64_t{1} << (*lo % 64);
        }
        out[w0 + i] = in[w0 + i] & mask;
      }
    }
    w = w0 + cw;
  }
  for (; w < n; ++w) out[w] = 0;
}

size_t HybridBitmap::AndCountWith(const uint64_t* words, size_t n) const {
  size_t count = 0;
  for (const Container& c : containers_) {
    size_t w0 = static_cast<size_t>(c.key) * kChunkWords;
    if (w0 >= n) break;
    size_t cw = std::min(ContainerWords(c.key), n - w0);
    if (c.dense) {
      count +=
          DenseBitmap::AndCountWords(words + w0, dense_.data() + c.offset, cw);
    } else {
      const uint16_t* lo = sparse_.data() + c.offset;
      for (uint32_t i = 0; i < c.card; ++i) {
        size_t w = lo[i] / 64;
        if (w < cw && ((words[w0 + w] >> (lo[i] % 64)) & 1u)) ++count;
      }
    }
  }
  return count;
}

bool HybridBitmap::AnyAndWith(const uint64_t* words, size_t n) const {
  for (const Container& c : containers_) {
    size_t w0 = static_cast<size_t>(c.key) * kChunkWords;
    if (w0 >= n) break;
    size_t cw = std::min(ContainerWords(c.key), n - w0);
    if (c.dense) {
      const uint64_t* cwords = dense_.data() + c.offset;
      for (size_t w = 0; w < cw; ++w) {
        if ((words[w0 + w] & cwords[w]) != 0) return true;
      }
    } else {
      const uint16_t* lo = sparse_.data() + c.offset;
      for (uint32_t i = 0; i < c.card; ++i) {
        size_t w = lo[i] / 64;
        if (w < cw && ((words[w0 + w] >> (lo[i] % 64)) & 1u)) return true;
      }
    }
  }
  return false;
}

void HybridBitmap::DecodeTo(uint64_t* out, size_t n) const {
  std::fill(out, out + n, 0);
  for (const Container& c : containers_) {
    size_t w0 = static_cast<size_t>(c.key) * kChunkWords;
    if (w0 >= n) break;
    size_t cw = std::min(ContainerWords(c.key), n - w0);
    if (c.dense) {
      std::copy(dense_.data() + c.offset, dense_.data() + c.offset + cw,
                out + w0);
    } else {
      const uint16_t* lo = sparse_.data() + c.offset;
      for (uint32_t i = 0; i < c.card; ++i) {
        size_t w = lo[i] / 64;
        if (w < cw) out[w0 + w] |= uint64_t{1} << (lo[i] % 64);
      }
    }
  }
}

std::vector<ValueId> HybridBitmap::ToIds() const {
  std::vector<ValueId> ids;
  ids.reserve(total_card_);
  ForEachIdUntil([&ids](ValueId id) {
    ids.push_back(id);
    return true;
  });
  return ids;
}

size_t HybridBitmap::NumDenseContainers() const {
  size_t count = 0;
  for (const Container& c : containers_) count += c.dense ? 1 : 0;
  return count;
}

}  // namespace whynot
