#ifndef WHYNOT_COMMON_EXEC_CONTROL_H_
#define WHYNOT_COMMON_EXEC_CONTROL_H_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "whynot/common/status.h"

/// Engine-wide execution control: deadlines, cooperative cancellation, and
/// the quality certificates of interrupted searches.
///
/// The NP-hard searches (Theorems 5.1/5.2) have no useful worst-case bound,
/// so every explain entry point takes an optional ExecContext and observes
/// it *only at serial merge points* — the per-candidate serial odometer
/// step, the per-survivor replay, the frontier wave merge, the enumeration
/// queue pop. Parallel workers never consult it except through
/// ShouldAbandon(), whose effect (discarding a whole not-yet-merged chunk)
/// is invisible to the output. That placement is what keeps interrupted
/// executions deterministic: a stop injected at probe ordinal N truncates
/// the consumed linearization prefix at exactly the same candidate at
/// every thread count, because the probe ordinals themselves are
/// thread-invariant.
///
/// Stops are reported one of two ways, chosen by the caller:
///  * no Certificate requested — the search returns kDeadlineExceeded /
///    kCancelled (budget exhaustion keeps its existing kResourceExhausted
///    report) and any partial output is discarded;
///  * Certificate requested — the search returns OK with the deterministic
///    prefix it covered, and the certificate says what that prefix is
///    worth: Quality::kExact when the search actually finished,
///    kLowerBound for sound-but-possibly-incomplete antichain/enumeration
///    prefixes, kHeuristic for greedy partials, plus Progress counters.

namespace whynot::test {
class FaultInjector;
}  // namespace whynot::test

namespace whynot::exec {

/// A monotonic-clock deadline. Default-constructed deadlines never expire,
/// so plumbing one unconditionally costs a comparison, not a clock read.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() : at_(Clock::time_point::max()) {}

  static Deadline After(int64_t ms) {
    Deadline d;
    d.at_ = Clock::now() + std::chrono::milliseconds(ms);
    return d;
  }
  static Deadline Infinite() { return Deadline(); }

  bool infinite() const { return at_ == Clock::time_point::max(); }
  bool Expired() const { return !infinite() && Clock::now() >= at_; }

 private:
  Clock::time_point at_;
};

/// Copyable cancellation handle; all copies share one flag. Cancel() may be
/// called from any thread (the session's Cancel() races request threads by
/// design); searches observe it at serial merge points only.
class CancelToken {
 public:
  CancelToken() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() const { flag_->store(true, std::memory_order_relaxed); }
  bool cancelled() const { return flag_->load(std::memory_order_relaxed); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

/// Why a search stopped early. kBudget is the existing candidate/node
/// budget surfacing through the certificate path — with no certificate the
/// budget keeps its historical ResourceExhausted error.
enum class StopReason { kNone, kDeadline, kCancelled, kBudget };

const char* StopReasonName(StopReason reason);

/// A stop observed at a serial merge point. `at` is the canonical probe
/// ordinal: the injector's configured trigger under fault injection
/// (identical at every thread count), the raw probe ordinal for real
/// wall-clock / cancellation stops (which are inherently timing-dependent).
struct Stop {
  StopReason reason = StopReason::kNone;
  size_t at = 0;
};

/// What a (possibly partial) result is worth.
enum class Quality {
  kExact,       ///< the search ran to completion
  kLowerBound,  ///< sound prefix of the exact answer set / linearization
  kHeuristic,   ///< greedy / incremental partial — sound but unranked
};

const char* QualityName(Quality quality);

/// Coverage counters of an interrupted search. `tested` counts predicate
/// probes actually evaluated, `remaining` the known still-queued work at
/// the stop point (0 when unknown or complete), `best_so_far` a
/// search-specific scalar (explanations kept, best degree, nodes output).
struct Progress {
  size_t tested = 0;
  size_t remaining = 0;
  size_t best_so_far = 0;
};

/// The quality certificate attached to a partial (or complete) result.
struct Certificate {
  Quality quality = Quality::kExact;
  StopReason stop = StopReason::kNone;
  Progress progress;

  bool complete() const { return stop == StopReason::kNone; }
};

/// Maps a Stop to the status an uncertified search returns.
Status StopStatus(const Stop& stop, const std::string& what);

/// Fills `cert` (null-tolerant) from a search's stop + progress counters.
/// `partial_quality` tags an interrupted run; a complete run (reason
/// kNone) is always kExact.
inline void FillCertificate(Certificate* cert, const Stop& stop,
                            Progress progress, size_t best_so_far,
                            Quality partial_quality = Quality::kLowerBound) {
  if (cert == nullptr) return;
  progress.best_so_far = best_so_far;
  cert->quality =
      stop.reason == StopReason::kNone ? Quality::kExact : partial_quality;
  cert->stop = stop.reason;
  cert->progress = progress;
}

/// The per-request execution context threaded through every layer. All
/// fields are optional: a default-constructed context never stops
/// anything, and a null ExecContext* (the historical call shape) costs
/// nothing at all.
///
/// Check() is the serial-merge-point probe. Contract: called from exactly
/// one thread at a time (the serial consumer), with `probe` a
/// thread-invariant ordinal of the search's linearization (candidates
/// enumerated, nodes expanded, ...). The clock/cancel poll is strided so
/// per-candidate checks stay a few cycles; the fault injector, when
/// present, observes every probe so injected stops are exact.
struct ExecContext {
  Deadline deadline;
  CancelToken cancel;
  whynot::test::FaultInjector* fault = nullptr;

  std::optional<Stop> Check(size_t probe) const {
    if (fault != nullptr) return CheckFault(probe);
    if ((++poll_tick_ & (kPollStride - 1)) != 0) return std::nullopt;
    return Poll(probe);
  }

  /// Async worker poll: cancellation / deadline only, NEVER injection —
  /// abandoning a chunk early must not change the merged output, and
  /// injected stops must stay exactly reproducible at the serial points.
  bool ShouldAbandon() const {
    return cancel.cancelled() || deadline.Expired();
  }

  /// Unstrided real poll (cancel / deadline, never injection): resolves an
  /// abandoned parallel region into its Stop at a serial point. Both
  /// abandon conditions are monotone, so this is engaged whenever a worker
  /// saw ShouldAbandon().
  std::optional<Stop> PollNow(size_t probe) const { return Poll(probe); }

 private:
  static constexpr uint32_t kPollStride = 64;

  std::optional<Stop> Poll(size_t probe) const;
  std::optional<Stop> CheckFault(size_t probe) const;

  // Serial-only by the Check contract, mutable so const contexts stride.
  // Starts one short of the stride so the first check polls immediately
  // (a pre-cancelled request dies at its first merge point).
  mutable uint32_t poll_tick_ = kPollStride - 1;
};

/// Null-tolerant probe: the historical no-context call shape stays a
/// pointer test.
inline std::optional<Stop> Check(const ExecContext* ctx, size_t probe) {
  if (ctx == nullptr) return std::nullopt;
  return ctx->Check(probe);
}

inline bool ShouldAbandon(const ExecContext* ctx) {
  return ctx != nullptr && ctx->ShouldAbandon();
}

}  // namespace whynot::exec

namespace whynot::test {

/// Deterministic fault injection for the execution-control paths. An
/// injector rides in ExecContext::fault and fires when the *probe ordinal*
/// reaches its trigger — never on call count, because the serial and
/// parallel paths of one search legitimately make different numbers of
/// checks; the ordinal sequence is what both paths share. The reported
/// Stop carries `at = trigger` even when the observed ordinal jumped past
/// it (wave-granular probes), so certificates are bit-identical at every
/// thread count.
class FaultInjector {
 public:
  /// Fires a cooperative cancellation once probes reach `n`.
  static FaultInjector CancelAt(size_t n) {
    return FaultInjector(exec::StopReason::kCancelled, n);
  }
  /// Fires a deadline expiry once probes reach `n`.
  static FaultInjector DeadlineAt(size_t n) {
    return FaultInjector(exec::StopReason::kDeadline, n);
  }
  /// Never fires on probes (carrier for fail_warm / probe_delay_us).
  FaultInjector() = default;

  /// Serial-merge-point observation; applies probe_delay_us, then fires
  /// iff probe >= trigger.
  std::optional<exec::Stop> Observe(size_t probe);

  size_t observations() const { return observations_; }
  size_t trigger() const { return trigger_; }

  /// Forces the next WarmExtensions through this context to fail its
  /// freeze path with ResourceExhausted (allocation-failure stand-in).
  bool fail_warm = false;
  /// Injected slow evaluator: sleep this long on every observed probe.
  uint32_t probe_delay_us = 0;

 private:
  FaultInjector(exec::StopReason reason, size_t trigger)
      : reason_(reason), trigger_(trigger) {}

  exec::StopReason reason_ = exec::StopReason::kNone;
  size_t trigger_ = SIZE_MAX;
  size_t observations_ = 0;
};

}  // namespace whynot::test

#endif  // WHYNOT_COMMON_EXEC_CONTROL_H_
