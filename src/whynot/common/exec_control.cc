#include "whynot/common/exec_control.h"

#include <chrono>
#include <thread>

namespace whynot::exec {

const char* StopReasonName(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "NONE";
    case StopReason::kDeadline:
      return "DEADLINE";
    case StopReason::kCancelled:
      return "CANCELLED";
    case StopReason::kBudget:
      return "BUDGET";
  }
  return "UNKNOWN";
}

const char* QualityName(Quality quality) {
  switch (quality) {
    case Quality::kExact:
      return "EXACT";
    case Quality::kLowerBound:
      return "LOWER_BOUND";
    case Quality::kHeuristic:
      return "HEURISTIC";
  }
  return "UNKNOWN";
}

Status StopStatus(const Stop& stop, const std::string& what) {
  std::string at = " (stopped at probe " + std::to_string(stop.at) + ")";
  switch (stop.reason) {
    case StopReason::kDeadline:
      return Status::DeadlineExceeded(what + " hit its deadline" + at);
    case StopReason::kCancelled:
      return Status::Cancelled(what + " was cancelled" + at);
    case StopReason::kBudget:
      return Status::ResourceExhausted(what + " exhausted its budget" + at);
    case StopReason::kNone:
      break;
  }
  return Status::Internal(what + ": StopStatus on a non-stop");
}

std::optional<Stop> ExecContext::Poll(size_t probe) const {
  if (cancel.cancelled()) return Stop{StopReason::kCancelled, probe};
  if (deadline.Expired()) return Stop{StopReason::kDeadline, probe};
  return std::nullopt;
}

std::optional<Stop> ExecContext::CheckFault(size_t probe) const {
  if (std::optional<Stop> stop = fault->Observe(probe)) return stop;
  // Injected delays make real deadlines reachable in tests; keep the
  // strided real poll behind the injector so a DeadlineAt trigger is
  // still the first stop a fast search can observe.
  if ((++poll_tick_ & (kPollStride - 1)) != 0) return std::nullopt;
  return Poll(probe);
}

}  // namespace whynot::exec

namespace whynot::test {

std::optional<exec::Stop> FaultInjector::Observe(size_t probe) {
  ++observations_;
  if (probe_delay_us > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(probe_delay_us));
  }
  if (reason_ != exec::StopReason::kNone && probe >= trigger_) {
    return exec::Stop{reason_, trigger_};
  }
  return std::nullopt;
}

}  // namespace whynot::test
