#ifndef WHYNOT_COMMON_VALUE_H_
#define WHYNOT_COMMON_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

namespace whynot {

/// A constant from the domain `Const` of the paper (Section 2).
///
/// The paper assumes a countably infinite set of constants with a dense
/// linear order `<`. We realize `Const` as the tagged union
/// {int64, double, string} with the documented total order:
///
///   * numbers (int64 and double) compare by numeric value;
///   * strings compare lexicographically;
///   * every number is smaller than every string.
///
/// Doubles provide density between any two numbers, which is all the
/// algorithms ever rely on (comparisons in queries and selections are
/// always against explicit constants; no arithmetic is performed).
class Value {
 public:
  enum class Kind { kInt = 0, kDouble = 1, kString = 2 };

  Value() : rep_(int64_t{0}) {}
  /// Implicit constructors keep call sites (tuples, test fixtures) terse.
  Value(int64_t v) : rep_(v) {}              // NOLINT(runtime/explicit)
  Value(int v) : rep_(int64_t{v}) {}         // NOLINT(runtime/explicit)
  Value(double v) : rep_(v) {}               // NOLINT(runtime/explicit)
  Value(std::string v) : rep_(std::move(v)) {}  // NOLINT(runtime/explicit)
  Value(const char* v) : rep_(std::string(v)) {}  // NOLINT(runtime/explicit)

  Kind kind() const { return static_cast<Kind>(rep_.index()); }
  bool is_number() const { return kind() != Kind::kString; }
  bool is_string() const { return kind() == Kind::kString; }

  /// Requires kind() == kInt.
  int64_t AsInt() const { return std::get<int64_t>(rep_); }
  /// Requires kind() == kDouble.
  double AsDoubleRaw() const { return std::get<double>(rep_); }
  /// Requires is_number(); widens int64 to double.
  double AsNumber() const;
  /// Requires is_string().
  const std::string& AsString() const { return std::get<std::string>(rep_); }

  /// Renders the value for display: strings unquoted, numbers via
  /// std::to_string-like formatting (integral doubles without trailing ".0").
  std::string ToString() const;
  /// Renders the value as a literal: strings in double quotes.
  std::string ToLiteral() const;

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }
  /// Total order described in the class comment.
  bool operator<(const Value& other) const;
  bool operator<=(const Value& other) const { return !(other < *this); }
  bool operator>(const Value& other) const { return other < *this; }
  bool operator>=(const Value& other) const { return !(*this < other); }

  size_t Hash() const;

 private:
  std::variant<int64_t, double, std::string> rep_;
};

std::ostream& operator<<(std::ostream& os, const Value& v);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Dense integer handle for an interned Value. Extensions, query answers
/// and ontology machinery all operate on ValueIds for speed and determinism.
using ValueId = int32_t;

/// Interns Values to dense ids. Owned by an Instance; ids are stable for
/// the lifetime of the pool and assigned in insertion order.
///
/// Besides the hash index, the pool maintains an *order-preserving* index —
/// the permutation of ids sorted by the Value total order, plus its inverse
/// (the rank array) — rebuilt lazily after interning. It lets id-space code
/// compare values (`Rank(a) < Rank(b)` iff `Get(a) < Get(b)`), resolve
/// comparison predicates to rank ranges, and emit extensions sorted by the
/// Value order without touching boxed Values. NOTE: the lazy mutable order
/// index makes a pool single-threaded, const methods included.
class ValuePool {
 public:
  ValuePool() = default;
  ValuePool(const ValuePool&) = delete;
  ValuePool& operator=(const ValuePool&) = delete;
  ValuePool(ValuePool&&) = default;
  ValuePool& operator=(ValuePool&&) = default;

  /// Explicit deep copy (the copy constructor stays deleted so pools are
  /// never duplicated by accident; an owning Instance clones on copy).
  ValuePool Clone() const;

  /// Returns the id for `v`, interning it if new.
  ValueId Intern(const Value& v);
  /// Returns the id for `v`, or -1 if it has never been interned.
  ValueId Lookup(const Value& v) const;
  /// Requires 0 <= id < size().
  const Value& Get(ValueId id) const { return values_[static_cast<size_t>(id)]; }
  int32_t size() const { return static_cast<int32_t>(values_.size()); }

  /// All interned ids, ascending in the Value total order.
  const std::vector<ValueId>& SortedIds() const;

  /// Position of `id` in the Value total order over interned values:
  /// Rank(a) < Rank(b) iff Get(a) < Get(b). O(1) after the lazy rebuild —
  /// the built-already check is inline (Rank sits in every id-space sort
  /// comparator; an out-of-line guard call would dominate them).
  int32_t Rank(ValueId id) const {
    if (order_dirty_ || sorted_ids_.size() != values_.size()) {
      EnsureOrderIndex();
    }
    return ranks_[static_cast<size_t>(id)];
  }

  /// Number of interned values strictly smaller than `v` (`v` need not be
  /// interned). With UpperBoundRank this resolves any `x op c` comparison
  /// to a half-open rank interval.
  int32_t LowerBoundRank(const Value& v) const;
  /// Number of interned values smaller than or equal to `v`.
  int32_t UpperBoundRank(const Value& v) const;

 private:
  void EnsureOrderIndex() const;

  std::vector<Value> values_;
  std::unordered_map<Value, ValueId, ValueHash> index_;
  mutable std::vector<ValueId> sorted_ids_;  // ids by ascending Value
  mutable std::vector<int32_t> ranks_;       // inverse of sorted_ids_
  mutable bool order_dirty_ = false;
};

/// A tuple of constants (a row of a relation, or a why-not tuple).
using Tuple = std::vector<Value>;

/// Renders "(v1, v2, ...)".
std::string TupleToString(const Tuple& t);

struct TupleHash {
  size_t operator()(const Tuple& t) const;
};

}  // namespace whynot

#endif  // WHYNOT_COMMON_VALUE_H_
