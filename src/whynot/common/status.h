#ifndef WHYNOT_COMMON_STATUS_H_
#define WHYNOT_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace whynot {

/// Error category for a failed operation.
///
/// The library is exception-free: fallible operations return `Status` or
/// `Result<T>` (see below), following the Arrow/RocksDB idiom.
enum class StatusCode {
  kOk = 0,
  /// Malformed input (bad arity, unknown relation, unbound variable, ...).
  kInvalidArgument,
  /// Lookup failed (no such relation / concept / attribute).
  kNotFound,
  /// The request is well-formed but the theory says "no": e.g. deciding
  /// schema subsumption under FDs + IDs combined, which is undecidable
  /// (Table 1 of the paper).
  kUnsupported,
  /// A configured resource limit (chase depth, enumeration cap) was hit
  /// before an answer could be produced.
  kResourceExhausted,
  /// Internal invariant violation; indicates a bug in this library.
  kInternal,
  /// The request's deadline expired before an answer could be produced
  /// (exec::Deadline); partial results travel via exec::Certificate.
  kDeadlineExceeded,
  /// The request was cooperatively cancelled (exec::CancelToken).
  kCancelled,
};

/// Human-readable name of a status code ("Ok", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: a code plus a diagnostic message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type `T` or an error `Status`. Never both.
template <typename T>
class Result {
 public:
  /// Implicit from a value: allows `return value;` in functions returning
  /// Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from an error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status");
    if (status_.ok()) {
      // NDEBUG builds must not fabricate an engaged-looking error result.
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// A Result whose value was consumed by `std::move(r).value()` is no
  /// longer ok(): the moved-from optional stays engaged, but status()
  /// reports the consumption instead of silently staying OK.
  bool ok() const { return value_.has_value() && status_.ok(); }
  const Status& status() const { return status_; }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    status_ = Status::Internal("Result value consumed by move");
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagates a non-OK Status out of the enclosing function.
#define WHYNOT_RETURN_IF_ERROR(expr)        \
  do {                                      \
    ::whynot::Status _st = (expr);          \
    if (!_st.ok()) return _st;              \
  } while (false)

/// Assigns the value of a Result expression to `lhs`, propagating errors.
#define WHYNOT_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value()
#define WHYNOT_ASSIGN_OR_RETURN_CAT(a, b) a##b
#define WHYNOT_ASSIGN_OR_RETURN_NAME(a, b) WHYNOT_ASSIGN_OR_RETURN_CAT(a, b)
#define WHYNOT_ASSIGN_OR_RETURN(lhs, expr)                                  \
  WHYNOT_ASSIGN_OR_RETURN_IMPL(                                             \
      WHYNOT_ASSIGN_OR_RETURN_NAME(_whynot_result_, __LINE__), lhs, expr)

}  // namespace whynot

#endif  // WHYNOT_COMMON_STATUS_H_
