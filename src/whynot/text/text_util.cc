#include "whynot/text/text_util.h"

#include <cctype>
#include <cstdlib>

namespace whynot::text {

namespace {

std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

}  // namespace

std::string StripCommentAndTrim(const std::string& line) {
  bool in_quote = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (c == '"' && (i == 0 || line[i - 1] != '\\')) in_quote = !in_quote;
    if (c == '#' && !in_quote) return Trim(line.substr(0, i));
  }
  return Trim(line);
}

std::vector<std::string> SplitTopLevel(const std::string& s, char delim) {
  std::vector<std::string> out;
  int depth = 0;
  bool in_quote = false;
  std::string current;
  for (size_t i = 0; i < s.size(); ++i) {
    char c = s[i];
    if (c == '"' && (i == 0 || s[i - 1] != '\\')) in_quote = !in_quote;
    if (!in_quote) {
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') --depth;
      if (c == delim && depth == 0) {
        out.push_back(Trim(current));
        current.clear();
        continue;
      }
    }
    current += c;
  }
  out.push_back(Trim(current));
  return out;
}

Result<std::pair<std::string, std::string>> SplitOnce(
    const std::string& s, const std::string& separator) {
  int depth = 0;
  bool in_quote = false;
  std::vector<size_t> hits;
  for (size_t i = 0; i + separator.size() <= s.size(); ++i) {
    char c = s[i];
    if (c == '"' && (i == 0 || s[i - 1] != '\\')) in_quote = !in_quote;
    if (in_quote) continue;
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
    if (depth == 0 && s.compare(i, separator.size(), separator) == 0) {
      hits.push_back(i);
      i += separator.size() - 1;
    }
  }
  if (hits.size() != 1) {
    return Status::InvalidArgument("expected exactly one '" + separator +
                                   "' in: " + s);
  }
  return std::make_pair(Trim(s.substr(0, hits[0])),
                        Trim(s.substr(hits[0] + separator.size())));
}

Result<Value> ParseValueLiteral(const std::string& token) {
  std::string t = Trim(token);
  if (t.empty()) return Status::InvalidArgument("empty value literal");
  if (t.front() == '"') {
    if (t.size() < 2 || t.back() != '"') {
      return Status::InvalidArgument("unterminated string literal: " + t);
    }
    std::string out;
    for (size_t i = 1; i + 1 < t.size(); ++i) {
      if (t[i] == '\\' && i + 2 < t.size() &&
          (t[i + 1] == '"' || t[i + 1] == '\\')) {
        out += t[i + 1];
        ++i;
      } else {
        out += t[i];
      }
    }
    return Value(std::move(out));
  }
  // Numeric?
  bool numeric = !t.empty() && (std::isdigit(static_cast<unsigned char>(
                                    t[0])) ||
                                ((t[0] == '-' || t[0] == '+') && t.size() > 1));
  if (numeric) {
    bool is_double = false;
    bool all_numeric = true;
    for (size_t i = 1; i < t.size(); ++i) {
      char c = t[i];
      if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        is_double = true;
      } else if (!std::isdigit(static_cast<unsigned char>(c))) {
        all_numeric = false;
        break;
      }
    }
    if (all_numeric) {
      char* end = nullptr;
      if (!is_double) {
        long long v = std::strtoll(t.c_str(), &end, 10);
        if (end == t.c_str() + t.size()) {
          return Value(static_cast<int64_t>(v));
        }
      }
      double d = std::strtod(t.c_str(), &end);
      if (end == t.c_str() + t.size()) return Value(d);
    }
  }
  // Bare word: a string constant.
  return Value(t);
}

Result<std::pair<std::string, std::vector<std::string>>> ParseCall(
    const std::string& s) {
  std::string t = Trim(s);
  size_t open = t.find('(');
  if (open == std::string::npos || t.back() != ')') {
    return Status::InvalidArgument("expected Name(args): " + t);
  }
  std::string name = Trim(t.substr(0, open));
  if (name.empty()) {
    return Status::InvalidArgument("missing name before '(': " + t);
  }
  std::string inner = t.substr(open + 1, t.size() - open - 2);
  std::vector<std::string> args;
  if (!Trim(inner).empty()) args = SplitTopLevel(inner, ',');
  for (const std::string& a : args) {
    if (a.empty()) {
      return Status::InvalidArgument("empty argument in: " + t);
    }
  }
  return std::make_pair(std::move(name), std::move(args));
}

Result<rel::CmpOp> ParseCmpOp(const std::string& token) {
  if (token == "=" || token == "==") return rel::CmpOp::kEq;
  if (token == "<") return rel::CmpOp::kLt;
  if (token == ">") return rel::CmpOp::kGt;
  if (token == "<=") return rel::CmpOp::kLe;
  if (token == ">=") return rel::CmpOp::kGe;
  return Status::InvalidArgument("unknown comparison operator: " + token);
}

bool IsIdentifier(const std::string& s) {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_') {
    return false;
  }
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != '.' &&
        c != '-') {
      return false;
    }
  }
  return true;
}

std::vector<std::pair<int, std::string>> LogicalLines(const std::string& text) {
  std::vector<std::pair<int, std::string>> out;
  int number = 0;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('\n', start);
    std::string raw = end == std::string::npos
                          ? text.substr(start)
                          : text.substr(start, end - start);
    ++number;
    std::string line = StripCommentAndTrim(raw);
    if (!line.empty()) out.emplace_back(number, line);
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return out;
}

Status AtLine(int line, const Status& status) {
  if (status.ok()) return status;
  return Status(status.code(),
                "line " + std::to_string(line) + ": " + status.message());
}

}  // namespace whynot::text
