#include "whynot/text/parsers.h"

#include <cctype>
#include <map>

#include "whynot/text/text_util.h"

namespace whynot::text {

namespace {

// --- shared body parsing (queries, view definitions, mapping bodies) ------

// Parses one body item — an atom `R(t, ...)` or a comparison `x op c` —
// under the convention that bare identifiers are variables.
Status ParseBodyItem(const std::string& item, std::vector<rel::Atom>* atoms,
                     std::vector<rel::Comparison>* comparisons) {
  // Comparison? Look for an operator at depth zero outside a call.
  if (item.find('(') == std::string::npos) {
    for (const std::string op_text : {"<=", ">=", "==", "=", "<", ">"}) {
      auto split = SplitOnce(item, op_text);
      if (!split.ok()) continue;
      const auto& [lhs, rhs] = split.value();
      if (!IsIdentifier(lhs)) {
        return Status::InvalidArgument(
            "comparison left side must be a variable: " + item);
      }
      WHYNOT_ASSIGN_OR_RETURN(rel::CmpOp op, ParseCmpOp(op_text));
      WHYNOT_ASSIGN_OR_RETURN(Value c, ParseValueLiteral(rhs));
      comparisons->push_back({lhs, op, std::move(c)});
      return Status::OK();
    }
    return Status::InvalidArgument("expected atom or comparison: " + item);
  }
  WHYNOT_ASSIGN_OR_RETURN(auto call, ParseCall(item));
  rel::Atom atom;
  atom.relation = std::move(call.first);
  for (const std::string& arg : call.second) {
    if (IsIdentifier(arg)) {
      atom.args.push_back(rel::Term::Var(arg));
    } else {
      WHYNOT_ASSIGN_OR_RETURN(Value v, ParseValueLiteral(arg));
      atom.args.push_back(rel::Term::Const(std::move(v)));
    }
  }
  atoms->push_back(std::move(atom));
  return Status::OK();
}

// Parses a union body `items | items | ...` with a fixed head.
Result<rel::UnionQuery> ParseUnionBody(const std::string& body,
                                       const std::vector<std::string>& head) {
  rel::UnionQuery q;
  for (const std::string& disjunct_text : SplitTopLevel(body, '|')) {
    if (disjunct_text.empty()) {
      return Status::InvalidArgument("empty disjunct in body: " + body);
    }
    rel::ConjunctiveQuery cq;
    cq.head = head;
    for (const std::string& item : SplitTopLevel(disjunct_text, ',')) {
      if (item.empty()) {
        return Status::InvalidArgument("empty item in body: " + disjunct_text);
      }
      WHYNOT_RETURN_IF_ERROR(
          ParseBodyItem(item, &cq.atoms, &cq.comparisons));
    }
    q.disjuncts.push_back(std::move(cq));
  }
  return q;
}

// Resolves an attribute given by name or 0-based index.
Result<int> ResolveAttr(const rel::RelationDef& def, const std::string& name) {
  int idx = def.AttrIndex(name);
  if (idx >= 0) return idx;
  bool numeric = !name.empty();
  for (char c : name) {
    if (!std::isdigit(static_cast<unsigned char>(c))) numeric = false;
  }
  if (numeric) {
    int i = std::atoi(name.c_str());
    if (i >= 0 && static_cast<size_t>(i) < def.arity()) return i;
  }
  return Status::NotFound("no attribute '" + name + "' in relation " +
                          def.name());
}

Result<std::vector<int>> ResolveAttrList(const rel::RelationDef& def,
                                         const std::string& list) {
  std::vector<int> out;
  for (const std::string& name : SplitTopLevel(list, ',')) {
    WHYNOT_ASSIGN_OR_RETURN(int idx, ResolveAttr(def, name));
    out.push_back(idx);
  }
  return out;
}

// Parses `Relation[attr, ...]`.
Result<std::pair<std::string, std::string>> ParseRelationAttrs(
    const std::string& s) {
  size_t open = s.find('[');
  if (open == std::string::npos || s.back() != ']') {
    return Status::InvalidArgument("expected Relation[attrs]: " + s);
  }
  std::string relation = StripCommentAndTrim(s.substr(0, open));
  std::string attrs = s.substr(open + 1, s.size() - open - 2);
  return std::make_pair(std::move(relation), std::move(attrs));
}

// --- DL-Lite expression parsing -------------------------------------------

Result<dl::Role> ParseRole(const std::string& s) {
  std::string t = s;
  bool inverse = false;
  if (t.size() > 2 && t.compare(t.size() - 2, 2, "^-") == 0) {
    inverse = true;
    t = StripCommentAndTrim(t.substr(0, t.size() - 2));
  }
  if (!IsIdentifier(t)) {
    return Status::InvalidArgument("bad role name: " + s);
  }
  return dl::Role{t, inverse};
}

Result<dl::BasicConcept> ParseBasicConcept(const std::string& s) {
  if (s.rfind("exists ", 0) == 0) {
    WHYNOT_ASSIGN_OR_RETURN(dl::Role role,
                            ParseRole(StripCommentAndTrim(s.substr(7))));
    return dl::BasicConcept::Exists(role);
  }
  if (!IsIdentifier(s)) {
    return Status::InvalidArgument("bad concept name: " + s);
  }
  return dl::BasicConcept::Atomic(s);
}

}  // namespace

Result<rel::Schema> ParseSchema(const std::string& text) {
  rel::Schema schema;
  for (const auto& [line, content] : LogicalLines(text)) {
    if (content.rfind("relation ", 0) == 0) {
      auto call = ParseCall(content.substr(9));
      if (!call.ok()) return AtLine(line, call.status());
      WHYNOT_RETURN_IF_ERROR(AtLine(
          line, schema.AddRelation(call.value().first, call.value().second)));
    } else if (content.rfind("view ", 0) == 0) {
      auto split = SplitOnce(content.substr(5), ":=");
      if (!split.ok()) return AtLine(line, split.status());
      auto head_call = ParseCall(split.value().first);
      if (!head_call.ok()) return AtLine(line, head_call.status());
      auto body = ParseUnionBody(split.value().second, head_call.value().second);
      if (!body.ok()) return AtLine(line, body.status());
      WHYNOT_RETURN_IF_ERROR(
          AtLine(line, schema.AddView(head_call.value().first,
                                      head_call.value().second,
                                      std::move(body).value())));
    } else if (content.rfind("fd ", 0) == 0) {
      // fd Relation: attrs -> attrs
      auto split = SplitOnce(content.substr(3), ":");
      if (!split.ok()) return AtLine(line, split.status());
      const rel::RelationDef* def = schema.Find(split.value().first);
      if (def == nullptr) {
        return AtLine(line, Status::NotFound("unknown relation: " +
                                             split.value().first));
      }
      auto arrow = SplitOnce(split.value().second, "->");
      if (!arrow.ok()) return AtLine(line, arrow.status());
      auto lhs = ResolveAttrList(*def, arrow.value().first);
      if (!lhs.ok()) return AtLine(line, lhs.status());
      auto rhs = ResolveAttrList(*def, arrow.value().second);
      if (!rhs.ok()) return AtLine(line, rhs.status());
      WHYNOT_RETURN_IF_ERROR(AtLine(
          line, schema.AddFd({def->name(), std::move(lhs).value(),
                              std::move(rhs).value()})));
    } else if (content.rfind("id ", 0) == 0) {
      // id R[attrs] <= S[attrs]
      auto split = SplitOnce(content.substr(3), "<=");
      if (!split.ok()) return AtLine(line, split.status());
      auto lhs = ParseRelationAttrs(split.value().first);
      if (!lhs.ok()) return AtLine(line, lhs.status());
      auto rhs = ParseRelationAttrs(split.value().second);
      if (!rhs.ok()) return AtLine(line, rhs.status());
      const rel::RelationDef* ldef = schema.Find(lhs.value().first);
      const rel::RelationDef* rdef = schema.Find(rhs.value().first);
      if (ldef == nullptr || rdef == nullptr) {
        return AtLine(line, Status::NotFound("unknown relation in id"));
      }
      auto lattrs = ResolveAttrList(*ldef, lhs.value().second);
      if (!lattrs.ok()) return AtLine(line, lattrs.status());
      auto rattrs = ResolveAttrList(*rdef, rhs.value().second);
      if (!rattrs.ok()) return AtLine(line, rattrs.status());
      WHYNOT_RETURN_IF_ERROR(AtLine(
          line, schema.AddId({ldef->name(), std::move(lattrs).value(),
                              rdef->name(), std::move(rattrs).value()})));
    } else {
      return AtLine(line, Status::InvalidArgument(
                              "expected 'relation', 'view', 'fd' or 'id': " +
                              content));
    }
  }
  WHYNOT_RETURN_IF_ERROR(schema.Validate());
  return schema;
}

Status ParseFactsInto(const std::string& text, rel::Instance* instance) {
  for (const auto& [line, content] : LogicalLines(text)) {
    auto call = ParseCall(content);
    if (!call.ok()) return AtLine(line, call.status());
    Tuple tuple;
    tuple.reserve(call.value().second.size());
    for (const std::string& arg : call.value().second) {
      auto v = ParseValueLiteral(arg);
      if (!v.ok()) return AtLine(line, v.status());
      tuple.push_back(std::move(v).value());
    }
    const rel::RelationDef* def =
        instance->schema().Find(call.value().first);
    if (def != nullptr && def->is_view()) {
      return AtLine(line,
                    Status::InvalidArgument(
                        "facts may not be asserted for view relation " +
                        def->name() + "; views are materialized"));
    }
    WHYNOT_RETURN_IF_ERROR(
        AtLine(line, instance->AddFact(call.value().first, std::move(tuple))));
  }
  return Status::OK();
}

Result<rel::UnionQuery> ParseQuery(const std::string& text,
                                   const rel::Schema& schema) {
  WHYNOT_ASSIGN_OR_RETURN(auto split,
                          SplitOnce(StripCommentAndTrim(text), ":="));
  WHYNOT_ASSIGN_OR_RETURN(auto head_call, ParseCall(split.first));
  for (const std::string& v : head_call.second) {
    if (!IsIdentifier(v)) {
      return Status::InvalidArgument("head terms must be variables: " + v);
    }
  }
  WHYNOT_ASSIGN_OR_RETURN(rel::UnionQuery q,
                          ParseUnionBody(split.second, head_call.second));
  WHYNOT_RETURN_IF_ERROR(q.Validate(schema));
  return q;
}

Result<dl::TBox> ParseTBox(const std::string& text) {
  dl::TBox tbox;
  for (const auto& [line, content] : LogicalLines(text)) {
    bool is_role = content.rfind("role ", 0) == 0;
    std::string rest = is_role ? content.substr(5) : content;
    if (rest.rfind("concept ", 0) == 0) rest = rest.substr(8);
    auto split = SplitOnce(rest, "<=");
    if (!split.ok()) return AtLine(line, split.status());
    std::string rhs = split.value().second;
    bool negated = false;
    if (rhs.rfind("not ", 0) == 0) {
      negated = true;
      rhs = StripCommentAndTrim(rhs.substr(4));
    }
    if (is_role) {
      auto lhs_role = ParseRole(split.value().first);
      if (!lhs_role.ok()) return AtLine(line, lhs_role.status());
      auto rhs_role = ParseRole(rhs);
      if (!rhs_role.ok()) return AtLine(line, rhs_role.status());
      tbox.AddRoleAxiom(lhs_role.value(), {rhs_role.value(), negated});
    } else {
      auto lhs_c = ParseBasicConcept(split.value().first);
      if (!lhs_c.ok()) return AtLine(line, lhs_c.status());
      auto rhs_c = ParseBasicConcept(rhs);
      if (!rhs_c.ok()) return AtLine(line, rhs_c.status());
      tbox.AddConceptAxiom(lhs_c.value(), {rhs_c.value(), negated});
    }
  }
  return tbox;
}

Result<std::vector<obda::GavMapping>> ParseMappings(const std::string& text,
                                                    const rel::Schema& schema) {
  std::vector<obda::GavMapping> mappings;
  for (const auto& [line, content] : LogicalLines(text)) {
    auto split = SplitOnce(content, "->");
    if (!split.ok()) return AtLine(line, split.status());
    obda::GavMapping m;
    for (const std::string& item : SplitTopLevel(split.value().first, ',')) {
      if (item.empty()) {
        return AtLine(line,
                      Status::InvalidArgument("empty item in mapping body"));
      }
      WHYNOT_RETURN_IF_ERROR(
          AtLine(line, ParseBodyItem(item, &m.atoms, &m.comparisons)));
    }
    auto head_call = ParseCall(split.value().second);
    if (!head_call.ok()) return AtLine(line, head_call.status());
    const auto& [head_name, head_args] = head_call.value();
    for (const std::string& v : head_args) {
      if (!IsIdentifier(v)) {
        return AtLine(line, Status::InvalidArgument(
                                "mapping head terms must be variables: " + v));
      }
    }
    if (head_args.size() == 1) {
      m.head = obda::MappingHead::Concept(head_name, head_args[0]);
    } else if (head_args.size() == 2) {
      m.head = obda::MappingHead::RolePair(head_name, head_args[0],
                                           head_args[1]);
    } else {
      return AtLine(line, Status::InvalidArgument(
                              "mapping head must be unary or binary: " +
                              split.value().second));
    }
    WHYNOT_RETURN_IF_ERROR(AtLine(line, m.Validate(schema)));
    mappings.push_back(std::move(m));
  }
  return mappings;
}

Result<dl::ABox> ParseAbox(const std::string& text) {
  dl::ABox abox;
  for (const auto& [line, content] : LogicalLines(text)) {
    auto call = ParseCall(content);
    if (!call.ok()) return AtLine(line, call.status());
    const auto& [name, args] = call.value();
    std::vector<Value> values;
    for (const std::string& arg : args) {
      auto v = ParseValueLiteral(arg);
      if (!v.ok()) return AtLine(line, v.status());
      values.push_back(std::move(v).value());
    }
    if (values.size() == 1) {
      abox.AddConceptAssertion(name, std::move(values[0]));
    } else if (values.size() == 2) {
      abox.AddRoleAssertion(name, std::move(values[0]), std::move(values[1]));
    } else {
      return AtLine(line, Status::InvalidArgument(
                              "assertions are unary or binary: " + content));
    }
  }
  return abox;
}

Result<Tuple> ParseTuple(const std::string& text) {
  std::string t = StripCommentAndTrim(text);
  if (!t.empty() && t.front() == '(' && t.back() == ')') {
    t = StripCommentAndTrim(t.substr(1, t.size() - 2));
  }
  Tuple tuple;
  for (const std::string& piece : SplitTopLevel(t, ',')) {
    WHYNOT_ASSIGN_OR_RETURN(Value v, ParseValueLiteral(piece));
    tuple.push_back(std::move(v));
  }
  return tuple;
}

}  // namespace whynot::text
