#ifndef WHYNOT_TEXT_DOT_EXPORT_H_
#define WHYNOT_TEXT_DOT_EXPORT_H_

#include <string>
#include <vector>

#include "whynot/explain/explanation.h"
#include "whynot/ontology/ontology.h"

namespace whynot::text {

struct DotOptions {
  /// Graph name (DOT identifier).
  std::string name = "ontology";
  /// Render extensions (ext(C, I)) inside each node label.
  bool show_extensions = true;
  /// Highlight these concepts (e.g. the concepts of a most-general
  /// explanation) with a double border and fill.
  std::vector<onto::ConceptId> highlight;
};

/// Renders the Hasse diagram of a bound ontology as a Graphviz DOT digraph
/// (edges point from subsumee to subsumer, Figure 3 style). Equivalent
/// concepts (mutual subsumption) are merged into one node listing all
/// names.
std::string OntologyToDot(onto::BoundOntology* bound,
                          const DotOptions& options = {});

/// Escapes a string for use inside a double-quoted DOT label.
std::string DotEscape(const std::string& s);

}  // namespace whynot::text

#endif  // WHYNOT_TEXT_DOT_EXPORT_H_
