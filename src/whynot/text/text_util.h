#ifndef WHYNOT_TEXT_TEXT_UTIL_H_
#define WHYNOT_TEXT_TEXT_UTIL_H_

#include <string>
#include <vector>

#include "whynot/common/status.h"
#include "whynot/common/value.h"
#include "whynot/relational/cq.h"

namespace whynot::text {

/// Strips a trailing `#` comment (quote-aware) and surrounding whitespace.
std::string StripCommentAndTrim(const std::string& line);

/// Splits on `delim` at paren/bracket/quote nesting depth zero; pieces are
/// trimmed. A trailing/leading empty piece is an error in most grammars,
/// so pieces are returned verbatim (possibly empty) for the caller to
/// validate.
std::vector<std::string> SplitTopLevel(const std::string& s, char delim);

/// Splits on a multi-character separator (e.g. "->", "<=", ":=") at depth
/// zero. Returns exactly two pieces, or an error when the separator occurs
/// zero or multiple times.
Result<std::pair<std::string, std::string>> SplitOnce(
    const std::string& s, const std::string& separator);

/// Parses a value literal: "quoted string" (with \" and \\ escapes),
/// integer, floating-point number, or bare word (treated as a string).
Result<Value> ParseValueLiteral(const std::string& token);

/// Parses `Name(arg, arg, ...)` into the name and raw argument strings.
Result<std::pair<std::string, std::vector<std::string>>> ParseCall(
    const std::string& s);

/// Parses a comparison operator token.
Result<rel::CmpOp> ParseCmpOp(const std::string& token);

/// True iff `s` is an identifier: [A-Za-z_][A-Za-z0-9_.-]* (dots and
/// dashes appear in the paper's names, e.g. "N.A.-City").
bool IsIdentifier(const std::string& s);

/// Splits a document into logical lines: comments stripped, blank lines
/// dropped; each returned pair is (1-based line number, content).
std::vector<std::pair<int, std::string>> LogicalLines(const std::string& text);

/// Prefixes `status`'s message with "line N: ". OK statuses pass through.
Status AtLine(int line, const Status& status);

}  // namespace whynot::text

#endif  // WHYNOT_TEXT_TEXT_UTIL_H_
