#include "whynot/text/dot_export.h"

#include <algorithm>
#include <map>
#include <set>

#include "whynot/common/strings.h"
#include "whynot/ontology/preorder.h"

namespace whynot::text {

std::string DotEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string OntologyToDot(onto::BoundOntology* bound,
                          const DotOptions& options) {
  int32_t n = bound->NumConcepts();
  onto::BoolMatrix closure(n);
  for (int32_t i = 0; i < n; ++i) {
    for (int32_t j = 0; j < n; ++j) {
      if (bound->Subsumes(i, j)) closure.Set(i, j);
    }
  }

  // Group ⊑-equivalent concepts under the shared representative choice
  // (smallest id — the same classes HasseEdges connects).
  std::map<int32_t, std::vector<int32_t>> classes;
  std::vector<int32_t> rep = onto::EquivalenceClassReps(closure);
  for (int32_t i = 0; i < n; ++i) {
    classes[rep[static_cast<size_t>(i)]].push_back(i);
  }

  std::set<onto::ConceptId> highlighted(options.highlight.begin(),
                                        options.highlight.end());

  std::string dot = "digraph " + options.name + " {\n";
  dot += "  rankdir=BT;\n";
  dot += "  node [shape=box, fontname=\"Helvetica\"];\n";
  for (const auto& [r, members] : classes) {
    std::vector<std::string> names;
    bool highlight = false;
    for (int32_t m : members) {
      names.push_back(bound->ConceptName(m));
      if (highlighted.count(m) > 0) highlight = true;
    }
    std::string label = DotEscape(Join(names, " = "));
    if (options.show_extensions) {
      // "\n" is DOT's in-label line break; it must not be escaped itself.
      label += "\\n" + DotEscape(bound->Ext(r).ToString(bound->pool()));
    }
    dot += "  c" + std::to_string(r) + " [label=\"" + label + "\"";
    if (highlight) {
      dot += ", peripheries=2, style=filled, fillcolor=\"#ffe9a8\"";
    }
    dot += "];\n";
  }
  for (const auto& [from, to] : onto::HasseEdges(closure)) {
    dot += "  c" + std::to_string(from) + " -> c" + std::to_string(to) +
           ";\n";
  }
  dot += "}\n";
  return dot;
}

}  // namespace whynot::text
