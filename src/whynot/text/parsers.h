#ifndef WHYNOT_TEXT_PARSERS_H_
#define WHYNOT_TEXT_PARSERS_H_

#include <string>
#include <vector>

#include "whynot/common/status.h"
#include "whynot/common/value.h"
#include "whynot/dllite/abox.h"
#include "whynot/dllite/tbox.h"
#include "whynot/obda/mapping.h"
#include "whynot/relational/cq.h"
#include "whynot/relational/instance.h"
#include "whynot/relational/schema.h"

namespace whynot::text {

/// Parses a schema document, one declaration per line (`#` comments):
///
///   relation Cities(name, population, country, continent)
///   view BigCity(name) := Cities(x, y, z, w), y >= 5000000
///   view Reachable(a, b) := TC(a, b) | TC(a, z), TC(z, b)
///   fd Cities: country -> continent
///   id BigCity[name] <= TC[city_from]
///
/// View bodies are unions (`|`) of comma-separated atoms and comparisons;
/// bare identifiers in bodies are variables, so constants must be quoted
/// or numeric. FD/ID attributes are names or 0-based indices. The parsed
/// schema is validated (arity checks, view acyclicity).
Result<rel::Schema> ParseSchema(const std::string& text);

/// Parses a facts document — one fact per line — into `instance`:
///
///   Cities(Amsterdam, 779808, Netherlands, Europe)
///
/// In fact files bare words are *string constants* (there are no
/// variables). View relations may not be populated directly; use
/// rel::MaterializeViews.
Status ParseFactsInto(const std::string& text, rel::Instance* instance);

/// Parses a (union) query:
///
///   q(x, y) := TC(x, z), TC(z, y) | TC(x, y)
///
/// Bare identifiers in the body are variables; constants must be quoted or
/// numeric. Every disjunct shares the head of the first. Validated against
/// `schema`.
Result<rel::UnionQuery> ParseQuery(const std::string& text,
                                   const rel::Schema& schema);

/// Parses a DL-LiteR TBox document, one axiom per line:
///
///   concept EU-City <= City
///   concept EU-City <= not N.A.-City
///   concept City <= exists hasCountry
///   concept exists hasCountry^- <= Country
///   role connected <= travels
///   role P <= not Q^-
///
/// The `concept` keyword may be omitted; `role` is required for role
/// axioms. `^-` marks an inverse role.
Result<dl::TBox> ParseTBox(const std::string& text);

/// Parses GAV mapping assertions, one per line:
///
///   Cities(x, z, w, "Europe") -> EU-City(x)
///   TC(x, y), Cities(x, a, b, c), Cities(y, d, e, f) -> connected(x, y)
///
/// Bodies follow the query-body syntax; heads are unary (concept) or
/// binary (role) atoms over head variables. Validated against `schema`.
Result<std::vector<obda::GavMapping>> ParseMappings(const std::string& text,
                                                    const rel::Schema& schema);

/// Parses an ABox document, one assertion per line:
///
///   EU-City(Amsterdam)
///   connected(Amsterdam, Berlin)
///
/// Bare words are string constants (fact-file convention).
Result<dl::ABox> ParseAbox(const std::string& text);

/// Parses a why-not tuple: `(Amsterdam, New York)` or `Amsterdam, New
/// York`. Bare words are string constants.
Result<Tuple> ParseTuple(const std::string& text);

}  // namespace whynot::text

#endif  // WHYNOT_TEXT_PARSERS_H_
