#include "whynot/obda/mapping.h"

#include "whynot/common/strings.h"

namespace whynot::obda {

rel::ConjunctiveQuery GavMapping::BodyAsQuery() const {
  rel::ConjunctiveQuery cq;
  cq.head.push_back(head.var1);
  if (head.kind == MappingHead::Kind::kRole) cq.head.push_back(head.var2);
  cq.atoms = atoms;
  cq.comparisons = comparisons;
  return cq;
}

Status GavMapping::Validate(const rel::Schema& schema) const {
  return BodyAsQuery().Validate(schema);
}

std::string GavMapping::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(atoms.size() + comparisons.size());
  for (const rel::Atom& a : atoms) parts.push_back(a.ToString());
  for (const rel::Comparison& c : comparisons) parts.push_back(c.ToString());
  return Join(parts, ", ") + " -> " + head.ToString();
}

}  // namespace whynot::obda
