#ifndef WHYNOT_OBDA_OBDA_SPEC_H_
#define WHYNOT_OBDA_OBDA_SPEC_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "whynot/common/status.h"
#include "whynot/common/value.h"
#include "whynot/dllite/reasoner.h"
#include "whynot/dllite/tbox.h"
#include "whynot/obda/mapping.h"
#include "whynot/relational/instance.h"

namespace whynot::obda {

/// The saturated certain memberships of one instance under an OBDA
/// specification: for every basic concept B over the TBox signature, the set
/// of constants c with c ∈ I(B) for *every* solution I
/// (= certain(B, I, B) of Theorem 4.1.2).
struct Saturation {
  /// Certain members per basic concept.
  std::map<dl::BasicConcept, std::set<Value>> concept_members;
  /// Certain pairs per atomic role name.
  std::map<std::string, std::set<std::pair<Value, Value>>> role_pairs;

  const std::set<Value>& Members(const dl::BasicConcept& b) const;
};

/// An OBDA specification B = (T, S, M) (Definition 4.3): a DL-LiteR TBox,
/// a relational schema, and GAV mapping assertions from S to the TBox
/// signature.
class ObdaSpec {
 public:
  ObdaSpec(dl::TBox tbox, const rel::Schema* schema,
           std::vector<GavMapping> mappings);

  const dl::TBox& tbox() const { return tbox_; }
  const rel::Schema& schema() const { return *schema_; }
  const std::vector<GavMapping>& mappings() const { return mappings_; }
  const dl::Reasoner& reasoner() const { return reasoner_; }

  Status Validate() const;

  /// Computes the certain memberships for `instance`:
  ///  1. evaluate every mapping body over the instance and assert the head
  ///     facts (the virtual ABox);
  ///  2. close role facts under the TBox's positive role inclusions;
  ///  3. derive ∃R / ∃R⁻ memberships from role facts;
  ///  4. close unary memberships under the positive concept closure
  ///     (including B ⊑ ∃R axioms, whose existential witnesses are
  ///     anonymous and therefore never surface as certain members of other
  ///     concepts — exactly the certain-answer semantics of Theorem 4.1.2).
  ///
  /// Runs in polynomial time (Theorem 4.2 relies on this).
  Result<Saturation> Saturate(const rel::Instance& instance) const;

  /// Checks that `instance` is consistent with the specification: no
  /// negative TBox axiom (concept or role disjointness) is violated by the
  /// saturated certain facts. The paper assumes consistent inputs when
  /// explaining; inconsistent ones are reported here.
  Status CheckConsistent(const rel::Instance& instance) const;

 private:
  dl::TBox tbox_;
  const rel::Schema* schema_;
  std::vector<GavMapping> mappings_;
  dl::Reasoner reasoner_;
};

}  // namespace whynot::obda

#endif  // WHYNOT_OBDA_OBDA_SPEC_H_
