#ifndef WHYNOT_OBDA_INDUCED_ONTOLOGY_H_
#define WHYNOT_OBDA_INDUCED_ONTOLOGY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "whynot/dllite/expressions.h"
#include "whynot/obda/obda_spec.h"
#include "whynot/ontology/ontology.h"

namespace whynot::obda {

/// The S-ontology O_B induced by an OBDA specification (Definition 4.4):
///
///  * concepts: all basic concept expressions occurring in the TBox,
///  * subsumption: ⊑_OB = {(C1, C2) | T ⊨ C1 ⊑ C2} via the DL-Lite
///    reasoner (PTIME, Theorem 4.1.1),
///  * ext_OB(C, I) = certain(C, I, B), computed by saturation (PTIME,
///    Theorem 4.1.2).
///
/// Construction is polynomial in the specification size (Theorem 4.2).
/// Saturations are cached per instance (keyed by address) so that binding
/// the ontology to an instance costs one saturation, not one per concept.
class ObdaInducedOntology : public onto::FiniteOntology {
 public:
  explicit ObdaInducedOntology(const ObdaSpec* spec);

  /// Id of a basic concept, or -1 if it does not occur in the TBox.
  onto::ConceptId FindConcept(const dl::BasicConcept& b) const;

  const dl::BasicConcept& Concept(onto::ConceptId id) const {
    return concepts_[static_cast<size_t>(id)];
  }

  // FiniteOntology:
  int32_t NumConcepts() const override {
    return static_cast<int32_t>(concepts_.size());
  }
  std::string ConceptName(onto::ConceptId id) const override {
    return concepts_[static_cast<size_t>(id)].ToString();
  }
  bool Subsumes(onto::ConceptId sub, onto::ConceptId super) const override;
  onto::ExtSet ComputeExt(onto::ConceptId id, const rel::Instance& instance,
                          ValuePool* pool) const override;

 private:
  const ObdaSpec* spec_;
  std::vector<dl::BasicConcept> concepts_;
  std::map<dl::BasicConcept, onto::ConceptId> index_;
  // Single-entry saturation cache: explanation algorithms bind exactly one
  // instance at a time.
  mutable const rel::Instance* cached_instance_ = nullptr;
  mutable std::unique_ptr<Saturation> cached_saturation_;
};

}  // namespace whynot::obda

#endif  // WHYNOT_OBDA_INDUCED_ONTOLOGY_H_
