#ifndef WHYNOT_OBDA_MAPPING_H_
#define WHYNOT_OBDA_MAPPING_H_

#include <string>
#include <vector>

#include "whynot/common/status.h"
#include "whynot/relational/cq.h"
#include "whynot/relational/schema.h"

namespace whynot::obda {

/// The head of a GAV mapping assertion (Definition 4.2): an atomic formula
/// A(x) over an atomic concept, or P(x, y) over an atomic role.
struct MappingHead {
  enum class Kind { kConcept, kRole };

  static MappingHead Concept(std::string name, std::string var) {
    return MappingHead{Kind::kConcept, std::move(name), std::move(var), ""};
  }
  static MappingHead RolePair(std::string name, std::string var1,
                              std::string var2) {
    return MappingHead{Kind::kRole, std::move(name), std::move(var1),
                       std::move(var2)};
  }

  Kind kind;
  std::string name;
  std::string var1;
  std::string var2;  // valid iff kind == kRole

  std::string ToString() const {
    return kind == Kind::kConcept ? name + "(" + var1 + ")"
                                  : name + "(" + var1 + ", " + var2 + ")";
  }
};

/// A GAV mapping assertion ∀x̄ (ϕ1 ∧ ... ∧ ϕn → ψ(x̄)) relating a
/// conjunctive query over the relational schema to an atomic concept or
/// role of the ontology (Definition 4.2). Comparisons to constants are
/// allowed in the body, matching the paper's CQ dialect.
struct GavMapping {
  /// Body atoms and comparisons over the relational schema. The head
  /// variables must occur in the body atoms.
  std::vector<rel::Atom> atoms;
  std::vector<rel::Comparison> comparisons;
  MappingHead head;

  Status Validate(const rel::Schema& schema) const;

  /// The body as a CQ whose head variables are the mapping-head variables.
  rel::ConjunctiveQuery BodyAsQuery() const;

  /// "Cities(x, z, w, "Europe") -> EU-City(x)".
  std::string ToString() const;
};

}  // namespace whynot::obda

#endif  // WHYNOT_OBDA_MAPPING_H_
