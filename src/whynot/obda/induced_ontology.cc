#include "whynot/obda/induced_ontology.h"

namespace whynot::obda {

ObdaInducedOntology::ObdaInducedOntology(const ObdaSpec* spec) : spec_(spec) {
  concepts_ = spec->tbox().BasicConcepts();
  for (size_t i = 0; i < concepts_.size(); ++i) {
    index_[concepts_[i]] = static_cast<onto::ConceptId>(i);
  }
}

onto::ConceptId ObdaInducedOntology::FindConcept(
    const dl::BasicConcept& b) const {
  auto it = index_.find(b);
  return it == index_.end() ? -1 : it->second;
}

bool ObdaInducedOntology::Subsumes(onto::ConceptId sub,
                                   onto::ConceptId super) const {
  return spec_->reasoner().Subsumed(concepts_[static_cast<size_t>(sub)],
                                    concepts_[static_cast<size_t>(super)]);
}

onto::ExtSet ObdaInducedOntology::ComputeExt(onto::ConceptId id,
                                             const rel::Instance& instance,
                                             ValuePool* pool) const {
  if (cached_instance_ != &instance || cached_saturation_ == nullptr) {
    Result<Saturation> sat = spec_->Saturate(instance);
    if (!sat.ok()) {
      // Saturation only fails on malformed mappings, which Validate()
      // rejects up front; treat as empty extension defensively.
      return onto::ExtSet();
    }
    cached_saturation_ =
        std::make_unique<Saturation>(std::move(sat).value());
    cached_instance_ = &instance;
  }
  const std::set<Value>& members =
      cached_saturation_->Members(concepts_[static_cast<size_t>(id)]);
  std::vector<ValueId> ids;
  ids.reserve(members.size());
  for (const Value& v : members) ids.push_back(pool->Intern(v));
  return onto::ExtSet::Finite(std::move(ids));
}

}  // namespace whynot::obda
