#include "whynot/obda/obda_spec.h"

#include "whynot/relational/cq_eval.h"

namespace whynot::obda {

const std::set<Value>& Saturation::Members(const dl::BasicConcept& b) const {
  static const std::set<Value> kEmpty;
  auto it = concept_members.find(b);
  return it == concept_members.end() ? kEmpty : it->second;
}

ObdaSpec::ObdaSpec(dl::TBox tbox, const rel::Schema* schema,
                   std::vector<GavMapping> mappings)
    : tbox_(std::move(tbox)),
      schema_(schema),
      mappings_(std::move(mappings)),
      reasoner_(&tbox_) {}

Status ObdaSpec::Validate() const {
  for (const GavMapping& m : mappings_) {
    WHYNOT_RETURN_IF_ERROR(m.Validate(*schema_));
  }
  return Status::OK();
}

Result<Saturation> ObdaSpec::Saturate(const rel::Instance& instance) const {
  Saturation sat;

  // Step 1: virtual ABox from the mappings.
  for (const GavMapping& m : mappings_) {
    WHYNOT_ASSIGN_OR_RETURN(std::vector<Tuple> rows,
                            rel::Evaluate(m.BodyAsQuery(), instance));
    for (const Tuple& row : rows) {
      if (m.head.kind == MappingHead::Kind::kConcept) {
        sat.concept_members[dl::BasicConcept::Atomic(m.head.name)].insert(
            row[0]);
      } else {
        sat.role_pairs[m.head.name].emplace(row[0], row[1]);
      }
    }
  }

  // Step 2: close role facts under positive role inclusions. For every
  // atomic role P with asserted pairs and every atomic role Q with
  // P ⊑ Q or P ⊑ Q⁻ derivable, add the (possibly flipped) pairs.
  std::map<std::string, std::set<std::pair<Value, Value>>> closed_roles =
      sat.role_pairs;
  for (const auto& [p_name, pairs] : sat.role_pairs) {
    dl::Role p{p_name, false};
    for (const dl::Role& q : reasoner_.RoleUniverse()) {
      if (!reasoner_.RoleSubsumed(p, q) || (q.name == p_name && !q.inverse)) {
        continue;
      }
      auto& target = closed_roles[q.name];
      for (const auto& [from, to] : pairs) {
        if (q.inverse) {
          target.emplace(to, from);
        } else {
          target.emplace(from, to);
        }
      }
    }
  }
  sat.role_pairs = std::move(closed_roles);

  // Step 3: ∃R / ∃R⁻ memberships from role facts.
  for (const auto& [p_name, pairs] : sat.role_pairs) {
    auto& fwd =
        sat.concept_members[dl::BasicConcept::Exists(dl::Role{p_name, false})];
    auto& bwd =
        sat.concept_members[dl::BasicConcept::Exists(dl::Role{p_name, true})];
    for (const auto& [from, to] : pairs) {
      fwd.insert(from);
      bwd.insert(to);
    }
  }

  // Step 4: close unary memberships under the positive concept closure.
  std::map<dl::BasicConcept, std::set<Value>> closed = sat.concept_members;
  for (const auto& [b, members] : sat.concept_members) {
    for (const dl::BasicConcept& c : reasoner_.Universe()) {
      if (c == b || !reasoner_.Subsumed(b, c)) continue;
      closed[c].insert(members.begin(), members.end());
    }
  }
  sat.concept_members = std::move(closed);
  return sat;
}

Status ObdaSpec::CheckConsistent(const rel::Instance& instance) const {
  WHYNOT_ASSIGN_OR_RETURN(Saturation sat, Saturate(instance));
  // Concept disjointness axioms.
  for (const dl::ConceptAxiom& ax : tbox_.concept_axioms()) {
    if (!ax.rhs.negated) continue;
    const std::set<Value>& lhs = sat.Members(ax.lhs);
    const std::set<Value>& rhs = sat.Members(ax.rhs.basic);
    for (const Value& v : lhs) {
      if (rhs.count(v) > 0) {
        return Status::InvalidArgument(
            "instance inconsistent with OBDA specification: axiom " +
            ax.ToString() + " violated by constant " + v.ToString());
      }
    }
  }
  // Role disjointness axioms.
  for (const dl::RoleAxiom& ax : tbox_.role_axioms()) {
    if (!ax.rhs.negated) continue;
    auto lhs_it = sat.role_pairs.find(ax.lhs.name);
    auto rhs_it = sat.role_pairs.find(ax.rhs.role.name);
    if (lhs_it == sat.role_pairs.end() || rhs_it == sat.role_pairs.end()) {
      continue;
    }
    for (std::pair<Value, Value> p : lhs_it->second) {
      if (ax.lhs.inverse) std::swap(p.first, p.second);
      std::pair<Value, Value> q = p;
      if (ax.rhs.role.inverse) std::swap(q.first, q.second);
      if (rhs_it->second.count(q) > 0) {
        return Status::InvalidArgument(
            "instance inconsistent with OBDA specification: axiom " +
            ax.ToString() + " violated");
      }
    }
  }
  return Status::OK();
}

}  // namespace whynot::obda
