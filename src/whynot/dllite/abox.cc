#include "whynot/dllite/abox.h"

#include <algorithm>

namespace whynot::dl {

void ABox::AddConceptAssertion(const std::string& atomic, Value c) {
  concept_assertions_[atomic].insert(std::move(c));
}

void ABox::AddRoleAssertion(const std::string& role, Value c, Value d) {
  role_assertions_[role].emplace(std::move(c), std::move(d));
}

std::vector<Value> ABox::Individuals() const {
  std::set<Value> all;
  for (const auto& [name, members] : concept_assertions_) {
    all.insert(members.begin(), members.end());
  }
  for (const auto& [name, pairs] : role_assertions_) {
    for (const auto& [c, d] : pairs) {
      all.insert(c);
      all.insert(d);
    }
  }
  return std::vector<Value>(all.begin(), all.end());
}

size_t ABox::NumAssertions() const {
  size_t n = 0;
  for (const auto& [name, members] : concept_assertions_) n += members.size();
  for (const auto& [name, pairs] : role_assertions_) n += pairs.size();
  return n;
}

std::string ABox::ToString() const {
  std::string out;
  for (const auto& [name, members] : concept_assertions_) {
    for (const Value& c : members) {
      out += name + "(" + c.ToString() + ")\n";
    }
  }
  for (const auto& [name, pairs] : role_assertions_) {
    for (const auto& [c, d] : pairs) {
      out += name + "(" + c.ToString() + ", " + d.ToString() + ")\n";
    }
  }
  return out;
}

namespace {

// The base (pre-closure) concepts asserted for `c`.
std::vector<BasicConcept> BaseConcepts(const ABox& abox, const Value& c) {
  std::vector<BasicConcept> base;
  for (const auto& [name, members] : abox.concept_assertions()) {
    if (members.count(c) > 0) base.push_back(BasicConcept::Atomic(name));
  }
  for (const auto& [name, pairs] : abox.role_assertions()) {
    bool from = false;
    bool to = false;
    for (const auto& [x, y] : pairs) {
      if (x == c) from = true;
      if (y == c) to = true;
      if (from && to) break;
    }
    if (from) base.push_back(BasicConcept::Exists(Role{name, false}));
    if (to) base.push_back(BasicConcept::Exists(Role{name, true}));
  }
  return base;
}

}  // namespace

std::vector<BasicConcept> DerivedConcepts(const Reasoner& reasoner,
                                          const ABox& abox, const Value& c) {
  std::set<BasicConcept> derived;
  for (const BasicConcept& base : BaseConcepts(abox, c)) {
    for (const BasicConcept& b : reasoner.Universe()) {
      if (reasoner.Subsumed(base, b)) derived.insert(b);
    }
    derived.insert(base);  // base concepts outside the TBox signature
  }
  return std::vector<BasicConcept>(derived.begin(), derived.end());
}

std::vector<Value> CertainMembers(const Reasoner& reasoner, const ABox& abox,
                                  const BasicConcept& b) {
  std::vector<Value> out;
  for (const Value& c : abox.Individuals()) {
    for (const BasicConcept& base : BaseConcepts(abox, c)) {
      if (base == b || reasoner.Subsumed(base, b)) {
        out.push_back(c);
        break;
      }
    }
  }
  return out;  // Individuals() is sorted and deduplicated already
}

std::vector<std::pair<Value, Value>> CertainRolePairs(const Reasoner& reasoner,
                                                      const ABox& abox,
                                                      const Role& r) {
  std::set<std::pair<Value, Value>> out;
  for (const auto& [name, pairs] : abox.role_assertions()) {
    Role direct{name, false};
    bool forward = direct == r || reasoner.RoleSubsumed(direct, r);
    bool backward =
        direct.Inverse() == r || reasoner.RoleSubsumed(direct.Inverse(), r);
    for (const auto& [c, d] : pairs) {
      if (forward) out.emplace(c, d);
      if (backward) out.emplace(d, c);
    }
  }
  return std::vector<std::pair<Value, Value>>(out.begin(), out.end());
}

Status CheckAboxConsistency(const Reasoner& reasoner, const ABox& abox) {
  for (const Value& c : abox.Individuals()) {
    std::vector<BasicConcept> base = BaseConcepts(abox, c);
    for (size_t i = 0; i < base.size(); ++i) {
      if (reasoner.Unsatisfiable(base[i])) {
        return Status::InvalidArgument(
            "assertion uses unsatisfiable concept " + base[i].ToString() +
            " for individual " + c.ToString());
      }
      for (size_t j = i + 1; j < base.size(); ++j) {
        if (reasoner.Disjoint(base[i], base[j])) {
          return Status::InvalidArgument(
              "individual " + c.ToString() + " realizes disjoint concepts " +
              base[i].ToString() + " and " + base[j].ToString());
        }
      }
    }
  }
  // Role disjointness: two asserted roles sharing a pair.
  std::vector<std::pair<Role, const std::set<std::pair<Value, Value>>*>>
      asserted;
  for (const auto& [name, pairs] : abox.role_assertions()) {
    asserted.emplace_back(Role{name, false}, &pairs);
  }
  for (size_t i = 0; i < asserted.size(); ++i) {
    if (reasoner.RoleUnsatisfiable(asserted[i].first)) {
      return Status::InvalidArgument("assertion uses unsatisfiable role " +
                                     asserted[i].first.ToString());
    }
    for (size_t j = i; j < asserted.size(); ++j) {
      bool direct_disjoint =
          reasoner.RoleDisjoint(asserted[i].first, asserted[j].first);
      bool inverse_disjoint = reasoner.RoleDisjoint(
          asserted[i].first, asserted[j].first.Inverse());
      if (!direct_disjoint && !inverse_disjoint) continue;
      for (const auto& p : *asserted[i].second) {
        if (direct_disjoint && i != j && asserted[j].second->count(p) > 0) {
          return Status::InvalidArgument(
              "pair (" + p.first.ToString() + ", " + p.second.ToString() +
              ") realizes disjoint roles " + asserted[i].first.ToString() +
              " and " + asserted[j].first.ToString());
        }
        std::pair<Value, Value> flipped{p.second, p.first};
        if (inverse_disjoint && asserted[j].second->count(flipped) > 0) {
          return Status::InvalidArgument(
              "pair (" + p.first.ToString() + ", " + p.second.ToString() +
              ") realizes roles disjoint up to inverse: " +
              asserted[i].first.ToString() + " and " +
              asserted[j].first.ToString() + "^-");
        }
      }
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<AboxOntology>> AboxOntology::Make(const TBox* tbox,
                                                         ABox abox) {
  std::unique_ptr<AboxOntology> onto(new AboxOntology(tbox, std::move(abox)));
  WHYNOT_RETURN_IF_ERROR(CheckAboxConsistency(onto->reasoner_, onto->abox_));
  return onto;
}

int32_t AboxOntology::NumConcepts() const {
  return static_cast<int32_t>(reasoner_.Universe().size());
}

std::string AboxOntology::ConceptName(onto::ConceptId id) const {
  return Concept(id).ToString();
}

bool AboxOntology::Subsumes(onto::ConceptId sub, onto::ConceptId super) const {
  return reasoner_.Subsumed(Concept(sub), Concept(super));
}

onto::ExtSet AboxOntology::ComputeExt(onto::ConceptId id,
                                      const rel::Instance& instance,
                                      ValuePool* pool) const {
  (void)instance;  // extensions are ABox-determined (Figure 3 style)
  std::vector<ValueId> ids;
  for (const Value& v : CertainMembers(reasoner_, abox_, Concept(id))) {
    ids.push_back(pool->Intern(v));
  }
  return onto::ExtSet::Finite(std::move(ids));
}

}  // namespace whynot::dl
