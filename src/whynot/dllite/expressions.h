#ifndef WHYNOT_DLLITE_EXPRESSIONS_H_
#define WHYNOT_DLLITE_EXPRESSIONS_H_

#include <string>

namespace whynot::dl {

/// A basic role expression of DL-LiteR (Definition 4.1): an atomic role P
/// or its inverse P⁻.
struct Role {
  std::string name;
  bool inverse = false;

  Role Inverse() const { return Role{name, !inverse}; }

  bool operator==(const Role& o) const {
    return name == o.name && inverse == o.inverse;
  }
  bool operator<(const Role& o) const {
    if (name != o.name) return name < o.name;
    return inverse < o.inverse;
  }

  /// "P" or "P^-".
  std::string ToString() const { return inverse ? name + "^-" : name; }
};

/// A basic concept expression of DL-LiteR (Definition 4.1): an atomic
/// concept A or an unqualified existential ∃R.
struct BasicConcept {
  enum class Kind { kAtomic, kExists };

  static BasicConcept Atomic(std::string name) {
    return BasicConcept{Kind::kAtomic, std::move(name), Role{}};
  }
  static BasicConcept Exists(Role role) {
    return BasicConcept{Kind::kExists, "", role};
  }

  Kind kind;
  std::string atomic;  // valid iff kind == kAtomic
  Role role;           // valid iff kind == kExists

  bool operator==(const BasicConcept& o) const {
    if (kind != o.kind) return false;
    return kind == Kind::kAtomic ? atomic == o.atomic : role == o.role;
  }
  bool operator<(const BasicConcept& o) const {
    if (kind != o.kind) return kind < o.kind;
    return kind == Kind::kAtomic ? atomic < o.atomic : role < o.role;
  }

  /// "A", "exists P", or "exists P^-".
  std::string ToString() const {
    return kind == Kind::kAtomic ? atomic : "exists " + role.ToString();
  }
};

/// A (general) concept expression: B or ¬B (Definition 4.1).
struct ConceptExpr {
  BasicConcept basic;
  bool negated = false;

  std::string ToString() const {
    return negated ? "not " + basic.ToString() : basic.ToString();
  }
};

/// A (general) role expression: R or ¬R.
struct RoleExpr {
  Role role;
  bool negated = false;

  std::string ToString() const {
    return negated ? "not " + role.ToString() : role.ToString();
  }
};

}  // namespace whynot::dl

#endif  // WHYNOT_DLLITE_EXPRESSIONS_H_
