#ifndef WHYNOT_DLLITE_ABOX_H_
#define WHYNOT_DLLITE_ABOX_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "whynot/common/status.h"
#include "whynot/common/value.h"
#include "whynot/dllite/reasoner.h"
#include "whynot/dllite/tbox.h"
#include "whynot/ontology/ontology.h"

namespace whynot::dl {

/// An ABox (Assertion Box): concept assertions A(c) and role assertions
/// P(c, d). Section 4.1 of the paper notes that "alongside TBoxes, ABoxes
/// are sometimes used to describe the extension of concepts" but omits
/// them for presentation; this module supplies them, giving a second,
/// mapping-free way to attach an external DL-LiteR ontology to the
/// framework (see AboxOntology below).
class ABox {
 public:
  /// Adds A(c). `atomic` must be an atomic concept name.
  void AddConceptAssertion(const std::string& atomic, Value c);
  /// Adds P(c, d). `role` must be an atomic role name.
  void AddRoleAssertion(const std::string& role, Value c, Value d);

  const std::map<std::string, std::set<Value>>& concept_assertions() const {
    return concept_assertions_;
  }
  const std::map<std::string, std::set<std::pair<Value, Value>>>&
  role_assertions() const {
    return role_assertions_;
  }

  /// All constants mentioned in assertions, sorted.
  std::vector<Value> Individuals() const;

  size_t NumAssertions() const;

  /// One assertion per line: "A(c)", "P(c, d)".
  std::string ToString() const;

 private:
  std::map<std::string, std::set<Value>> concept_assertions_;
  std::map<std::string, std::set<std::pair<Value, Value>>> role_assertions_;
};

/// The basic concepts b with (T, A) ⊨ b(c) for some asserted pattern:
/// A(c) assertions yield A, P(c, ·) yields ∃P, P(·, c) yields ∃P⁻; the
/// TBox closure then lifts these along ⊑. (For DL-LiteR with GAV-style
/// data this syntactic saturation is complete for instance checking —
/// the canonical-model property of the DL-Lite family.)
std::vector<BasicConcept> DerivedConcepts(const Reasoner& reasoner,
                                          const ABox& abox, const Value& c);

/// {c | (T, A) ⊨ b(c)}, sorted.
std::vector<Value> CertainMembers(const Reasoner& reasoner, const ABox& abox,
                                  const BasicConcept& b);

/// {(c, d) | (T, A) ⊨ r(c, d)}, sorted.
std::vector<std::pair<Value, Value>> CertainRolePairs(const Reasoner& reasoner,
                                                      const ABox& abox,
                                                      const Role& r);

/// Checks (T, A) consistency: no individual may realize two concepts that
/// the TBox makes disjoint, no pair may realize two disjoint roles, and no
/// assertion may use an unsatisfiable concept/role. Returns
/// InvalidArgument naming the first conflict found.
Status CheckAboxConsistency(const Reasoner& reasoner, const ABox& abox);

/// An S-ontology (Definition 3.1) whose concepts are the basic concepts of
/// a DL-LiteR TBox and whose extensions come from an ABox — independent of
/// the database instance, exactly like the hand-built ontology of
/// Figure 3. This is the ABox-based alternative to the OBDA route of
/// Definition 4.4 (where ext is induced by GAV mappings instead).
class AboxOntology : public onto::FiniteOntology {
 public:
  /// Fails when (T, A) is inconsistent.
  static Result<std::unique_ptr<AboxOntology>> Make(const TBox* tbox,
                                                    ABox abox);

  const Reasoner& reasoner() const { return reasoner_; }
  const ABox& abox() const { return abox_; }
  const BasicConcept& Concept(onto::ConceptId id) const {
    return reasoner_.Universe()[static_cast<size_t>(id)];
  }

  // FiniteOntology:
  int32_t NumConcepts() const override;
  std::string ConceptName(onto::ConceptId id) const override;
  bool Subsumes(onto::ConceptId sub, onto::ConceptId super) const override;
  onto::ExtSet ComputeExt(onto::ConceptId id, const rel::Instance& instance,
                          ValuePool* pool) const override;

 private:
  AboxOntology(const TBox* tbox, ABox abox)
      : abox_(std::move(abox)), reasoner_(tbox) {}

  ABox abox_;
  Reasoner reasoner_;
};

}  // namespace whynot::dl

#endif  // WHYNOT_DLLITE_ABOX_H_
