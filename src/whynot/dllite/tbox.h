#ifndef WHYNOT_DLLITE_TBOX_H_
#define WHYNOT_DLLITE_TBOX_H_

#include <set>
#include <string>
#include <vector>

#include "whynot/common/status.h"
#include "whynot/dllite/expressions.h"

namespace whynot::dl {

/// A TBox axiom B ⊑ C with B basic and C possibly negated (Definition 4.1).
struct ConceptAxiom {
  BasicConcept lhs;
  ConceptExpr rhs;

  std::string ToString() const {
    return lhs.ToString() + " <= " + rhs.ToString();
  }
};

/// A TBox axiom R ⊑ E with R basic and E possibly negated.
struct RoleAxiom {
  Role lhs;
  RoleExpr rhs;

  std::string ToString() const {
    return lhs.ToString() + " <= " + rhs.ToString();
  }
};

/// A DL-LiteR TBox: a finite set of concept and role inclusion axioms.
class TBox {
 public:
  void AddConceptAxiom(BasicConcept lhs, ConceptExpr rhs) {
    concept_axioms_.push_back({std::move(lhs), std::move(rhs)});
  }
  void AddRoleAxiom(Role lhs, RoleExpr rhs) {
    role_axioms_.push_back({std::move(lhs), std::move(rhs)});
  }

  /// Convenience: A ⊑ B for atomic names.
  void AddAtomicInclusion(const std::string& sub, const std::string& super) {
    AddConceptAxiom(BasicConcept::Atomic(sub),
                    ConceptExpr{BasicConcept::Atomic(super), false});
  }
  /// Convenience: A ⊑ ¬B for atomic names (disjointness).
  void AddAtomicDisjointness(const std::string& a, const std::string& b) {
    AddConceptAxiom(BasicConcept::Atomic(a),
                    ConceptExpr{BasicConcept::Atomic(b), true});
  }

  const std::vector<ConceptAxiom>& concept_axioms() const {
    return concept_axioms_;
  }
  const std::vector<RoleAxiom>& role_axioms() const { return role_axioms_; }

  /// All atomic concept names occurring anywhere in the TBox (ΦC ∩ T).
  std::set<std::string> AtomicConcepts() const;
  /// All atomic role names occurring anywhere in the TBox (ΦR ∩ T).
  std::set<std::string> AtomicRoles() const;

  /// All basic concept expressions occurring in the TBox; this is exactly
  /// the concept set C_OB of the induced S-ontology (Definition 4.4).
  std::vector<BasicConcept> BasicConcepts() const;

  /// One axiom per line.
  std::string ToString() const;

 private:
  std::vector<ConceptAxiom> concept_axioms_;
  std::vector<RoleAxiom> role_axioms_;
};

}  // namespace whynot::dl

#endif  // WHYNOT_DLLITE_TBOX_H_
