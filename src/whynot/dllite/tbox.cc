#include "whynot/dllite/tbox.h"

namespace whynot::dl {

namespace {

void CollectBasic(const BasicConcept& b, std::set<BasicConcept>* out) {
  out->insert(b);
}

}  // namespace

std::set<std::string> TBox::AtomicConcepts() const {
  std::set<std::string> out;
  for (const ConceptAxiom& ax : concept_axioms_) {
    if (ax.lhs.kind == BasicConcept::Kind::kAtomic) out.insert(ax.lhs.atomic);
    if (ax.rhs.basic.kind == BasicConcept::Kind::kAtomic) {
      out.insert(ax.rhs.basic.atomic);
    }
  }
  return out;
}

std::set<std::string> TBox::AtomicRoles() const {
  std::set<std::string> out;
  for (const ConceptAxiom& ax : concept_axioms_) {
    if (ax.lhs.kind == BasicConcept::Kind::kExists) out.insert(ax.lhs.role.name);
    if (ax.rhs.basic.kind == BasicConcept::Kind::kExists) {
      out.insert(ax.rhs.basic.role.name);
    }
  }
  for (const RoleAxiom& ax : role_axioms_) {
    out.insert(ax.lhs.name);
    out.insert(ax.rhs.role.name);
  }
  return out;
}

std::vector<BasicConcept> TBox::BasicConcepts() const {
  std::set<BasicConcept> set;
  for (const ConceptAxiom& ax : concept_axioms_) {
    CollectBasic(ax.lhs, &set);
    CollectBasic(ax.rhs.basic, &set);
  }
  return std::vector<BasicConcept>(set.begin(), set.end());
}

std::string TBox::ToString() const {
  std::string out;
  for (const ConceptAxiom& ax : concept_axioms_) out += ax.ToString() + "\n";
  for (const RoleAxiom& ax : role_axioms_) out += ax.ToString() + "\n";
  return out;
}

}  // namespace whynot::dl
