#include "whynot/dllite/reasoner.h"

#include <algorithm>

namespace whynot::dl {

Reasoner::Reasoner(const TBox* tbox) : tbox_(tbox) {
  // Universe of basic roles: P and P^- for every atomic role.
  for (const std::string& p : tbox->AtomicRoles()) {
    roles_.push_back(Role{p, false});
    roles_.push_back(Role{p, true});
  }
  std::sort(roles_.begin(), roles_.end());
  for (size_t i = 0; i < roles_.size(); ++i) {
    role_index_[roles_[i]] = static_cast<int>(i);
  }

  // Universe of basic concepts: atomic concepts plus ∃R for each basic role.
  for (const std::string& a : tbox->AtomicConcepts()) {
    concepts_.push_back(BasicConcept::Atomic(a));
  }
  for (const Role& r : roles_) {
    concepts_.push_back(BasicConcept::Exists(r));
  }
  std::sort(concepts_.begin(), concepts_.end());
  for (size_t i = 0; i < concepts_.size(); ++i) {
    concept_index_[concepts_[i]] = static_cast<int>(i);
  }

  int nr = static_cast<int>(roles_.size());
  int nc = static_cast<int>(concepts_.size());
  role_closure_ = onto::BoolMatrix(nr);
  concept_closure_ = onto::BoolMatrix(nc);
  role_disjoint_ = onto::BoolMatrix(nr);
  concept_disjoint_ = onto::BoolMatrix(nc);

  // Positive role inclusions, mirrored on inverses.
  for (const RoleAxiom& ax : tbox->role_axioms()) {
    if (ax.rhs.negated) continue;
    int l = RoleIndex(ax.lhs);
    int r = RoleIndex(ax.rhs.role);
    int li = RoleIndex(ax.lhs.Inverse());
    int ri = RoleIndex(ax.rhs.role.Inverse());
    if (l >= 0 && r >= 0) role_closure_.Set(l, r);
    if (li >= 0 && ri >= 0) role_closure_.Set(li, ri);
  }
  onto::ReflexiveTransitiveClosure(&role_closure_);

  // Positive concept inclusions.
  for (const ConceptAxiom& ax : tbox->concept_axioms()) {
    if (ax.rhs.negated) continue;
    int l = ConceptIndex(ax.lhs);
    int r = ConceptIndex(ax.rhs.basic);
    if (l >= 0 && r >= 0) concept_closure_.Set(l, r);
  }
  // Role inclusions induce ∃R ⊑ ∃S (the inverse direction ∃R⁻ ⊑ ∃S⁻ is
  // covered because the role closure contains the mirrored edge).
  for (int i = 0; i < nr; ++i) {
    for (int j = 0; j < nr; ++j) {
      if (!role_closure_.Get(i, j)) continue;
      int ei = ConceptIndex(BasicConcept::Exists(roles_[static_cast<size_t>(i)]));
      int ej = ConceptIndex(BasicConcept::Exists(roles_[static_cast<size_t>(j)]));
      if (ei >= 0 && ej >= 0) concept_closure_.Set(ei, ej);
    }
  }
  onto::ReflexiveTransitiveClosure(&concept_closure_);

  // Negative role inclusions: R ⊑ ¬S yields base disjoint pairs (R, S) and
  // (R⁻, S⁻); close upward over the positive role closure, symmetrically.
  onto::BoolMatrix role_base_disj(nr);
  for (const RoleAxiom& ax : tbox->role_axioms()) {
    if (!ax.rhs.negated) continue;
    auto mark = [&](const Role& a, const Role& b) {
      int ia = RoleIndex(a);
      int ib = RoleIndex(b);
      if (ia >= 0 && ib >= 0) {
        role_base_disj.Set(ia, ib);
        role_base_disj.Set(ib, ia);
      }
    };
    mark(ax.lhs, ax.rhs.role);
    mark(ax.lhs.Inverse(), ax.rhs.role.Inverse());
  }
  for (int a = 0; a < nr; ++a) {
    for (int b = 0; b < nr; ++b) {
      bool disj = false;
      for (int x = 0; x < nr && !disj; ++x) {
        if (!role_closure_.Get(a, x)) continue;
        for (int y = 0; y < nr && !disj; ++y) {
          if (role_closure_.Get(b, y) && role_base_disj.Get(x, y)) disj = true;
        }
      }
      if (disj) role_disjoint_.Set(a, b);
    }
  }

  // Negative concept inclusions, plus self-disjointness of ∃R for
  // unsatisfiable roles; closed upward over the positive concept closure.
  onto::BoolMatrix concept_base_disj(nc);
  for (const ConceptAxiom& ax : tbox->concept_axioms()) {
    if (!ax.rhs.negated) continue;
    int ia = ConceptIndex(ax.lhs);
    int ib = ConceptIndex(ax.rhs.basic);
    if (ia >= 0 && ib >= 0) {
      concept_base_disj.Set(ia, ib);
      concept_base_disj.Set(ib, ia);
    }
  }
  for (int r = 0; r < nr; ++r) {
    if (!role_disjoint_.Get(r, r)) continue;
    int e = ConceptIndex(BasicConcept::Exists(roles_[static_cast<size_t>(r)]));
    if (e >= 0) concept_base_disj.Set(e, e);
  }
  for (int a = 0; a < nc; ++a) {
    for (int b = 0; b < nc; ++b) {
      bool disj = false;
      for (int x = 0; x < nc && !disj; ++x) {
        if (!concept_closure_.Get(a, x)) continue;
        for (int y = 0; y < nc && !disj; ++y) {
          if (concept_closure_.Get(b, y) && concept_base_disj.Get(x, y)) {
            disj = true;
          }
        }
      }
      if (disj) concept_disjoint_.Set(a, b);
    }
  }
}

int Reasoner::ConceptIndex(const BasicConcept& b) const {
  auto it = concept_index_.find(b);
  return it == concept_index_.end() ? -1 : it->second;
}

int Reasoner::RoleIndex(const Role& r) const {
  auto it = role_index_.find(r);
  return it == role_index_.end() ? -1 : it->second;
}

bool Reasoner::Subsumed(const BasicConcept& b1, const BasicConcept& b2) const {
  if (b1 == b2) return true;
  int i = ConceptIndex(b1);
  int j = ConceptIndex(b2);
  if (i < 0) return false;  // unknown concept: only reflexivity holds
  if (Unsatisfiable(b1)) return true;
  if (j < 0) return false;
  return concept_closure_.Get(i, j);
}

bool Reasoner::Disjoint(const BasicConcept& b1, const BasicConcept& b2) const {
  if (Unsatisfiable(b1) || Unsatisfiable(b2)) return true;
  int i = ConceptIndex(b1);
  int j = ConceptIndex(b2);
  if (i < 0 || j < 0) return false;
  return concept_disjoint_.Get(i, j);
}

bool Reasoner::Unsatisfiable(const BasicConcept& b) const {
  int i = ConceptIndex(b);
  return i >= 0 && concept_disjoint_.Get(i, i);
}

bool Reasoner::RoleSubsumed(const Role& r1, const Role& r2) const {
  if (r1 == r2) return true;
  int i = RoleIndex(r1);
  int j = RoleIndex(r2);
  if (i < 0) return false;
  if (RoleUnsatisfiable(r1)) return true;
  if (j < 0) return false;
  return role_closure_.Get(i, j);
}

bool Reasoner::RoleDisjoint(const Role& r1, const Role& r2) const {
  if (RoleUnsatisfiable(r1) || RoleUnsatisfiable(r2)) return true;
  int i = RoleIndex(r1);
  int j = RoleIndex(r2);
  if (i < 0 || j < 0) return false;
  return role_disjoint_.Get(i, j);
}

bool Reasoner::RoleUnsatisfiable(const Role& r) const {
  int i = RoleIndex(r);
  return i >= 0 && role_disjoint_.Get(i, i);
}

void Interpretation::AddConceptMember(const std::string& atomic, Value v) {
  concepts_[atomic].insert(std::move(v));
}

void Interpretation::AddRolePair(const std::string& role, Value from,
                                 Value to) {
  roles_[role].emplace(std::move(from), std::move(to));
}

std::set<Value> Interpretation::Eval(const BasicConcept& b) const {
  if (b.kind == BasicConcept::Kind::kAtomic) {
    auto it = concepts_.find(b.atomic);
    return it == concepts_.end() ? std::set<Value>{} : it->second;
  }
  std::set<Value> out;
  for (const auto& [from, to] : EvalRole(b.role)) out.insert(from);
  return out;
}

std::set<std::pair<Value, Value>> Interpretation::EvalRole(
    const Role& r) const {
  auto it = roles_.find(r.name);
  if (it == roles_.end()) return {};
  if (!r.inverse) return it->second;
  std::set<std::pair<Value, Value>> out;
  for (const auto& [from, to] : it->second) out.emplace(to, from);
  return out;
}

bool Interpretation::Satisfies(const TBox& tbox) const {
  for (const ConceptAxiom& ax : tbox.concept_axioms()) {
    std::set<Value> lhs = Eval(ax.lhs);
    std::set<Value> rhs = Eval(ax.rhs.basic);
    if (ax.rhs.negated) {
      for (const Value& v : lhs) {
        if (rhs.count(v) > 0) return false;
      }
    } else {
      for (const Value& v : lhs) {
        if (rhs.count(v) == 0) return false;
      }
    }
  }
  for (const RoleAxiom& ax : tbox.role_axioms()) {
    auto lhs = EvalRole(ax.lhs);
    auto rhs = EvalRole(ax.rhs.role);
    if (ax.rhs.negated) {
      for (const auto& p : lhs) {
        if (rhs.count(p) > 0) return false;
      }
    } else {
      for (const auto& p : lhs) {
        if (rhs.count(p) == 0) return false;
      }
    }
  }
  return true;
}

}  // namespace whynot::dl
