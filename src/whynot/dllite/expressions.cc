#include "whynot/dllite/expressions.h"

// All members are defined inline in the header; this translation unit exists
// so the module has a stable home for future out-of-line definitions.

namespace whynot::dl {}  // namespace whynot::dl
