#ifndef WHYNOT_DLLITE_REASONER_H_
#define WHYNOT_DLLITE_REASONER_H_

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "whynot/common/value.h"
#include "whynot/dllite/tbox.h"
#include "whynot/ontology/preorder.h"

namespace whynot::dl {

/// PTIME subsumption and consistency reasoning for DL-LiteR TBoxes
/// (Theorem 4.1.1 of the paper; the algorithm is the standard closure
/// construction of Calvanese et al., JAR 2007).
///
/// Construction: the positive concept-inclusion digraph over all basic
/// concepts (atomic concepts of the TBox plus ∃P / ∃P⁻ for its roles) is
/// closed transitively, where role inclusions R ⊑ S additionally induce
/// ∃R ⊑ ∃S and ∃R⁻ ⊑ ∃S⁻, and every role edge is mirrored on the
/// inverses. Negative inclusions are propagated backwards over the
/// positive closure; a basic concept is unsatisfiable iff it is disjoint
/// with itself, and an unsatisfiable concept is subsumed by everything.
class Reasoner {
 public:
  explicit Reasoner(const TBox* tbox);

  /// T ⊨ b1 ⊑ b2.
  bool Subsumed(const BasicConcept& b1, const BasicConcept& b2) const;
  /// T ⊨ b1 ⊑ ¬b2 (equivalently: I(b1) ∩ I(b2) = ∅ in every model).
  bool Disjoint(const BasicConcept& b1, const BasicConcept& b2) const;
  /// T ⊨ b ⊑ ⊥ (empty in every model).
  bool Unsatisfiable(const BasicConcept& b) const;

  /// T ⊨ r1 ⊑ r2.
  bool RoleSubsumed(const Role& r1, const Role& r2) const;
  /// T ⊨ r1 ⊑ ¬r2.
  bool RoleDisjoint(const Role& r1, const Role& r2) const;
  bool RoleUnsatisfiable(const Role& r) const;

  /// All basic concepts over the TBox's signature: its atomic concepts and
  /// ∃P / ∃P⁻ for each of its atomic roles, sorted.
  const std::vector<BasicConcept>& Universe() const { return concepts_; }
  /// All basic roles P / P⁻ over the TBox's roles, sorted.
  const std::vector<Role>& RoleUniverse() const { return roles_; }

 private:
  int ConceptIndex(const BasicConcept& b) const;
  int RoleIndex(const Role& r) const;

  const TBox* tbox_;
  std::vector<BasicConcept> concepts_;
  std::map<BasicConcept, int> concept_index_;
  std::vector<Role> roles_;
  std::map<Role, int> role_index_;
  onto::BoolMatrix concept_closure_{0};
  onto::BoolMatrix role_closure_{0};
  onto::BoolMatrix concept_disjoint_{0};
  onto::BoolMatrix role_disjoint_{0};
};

/// A finite (ΦC, ΦR)-interpretation for testing the reasoner against model
/// semantics: assigns finite unary relations to atomic concepts and finite
/// binary relations to atomic roles. Negated expressions are handled via
/// disjointness (never by materializing complements).
class Interpretation {
 public:
  void AddConceptMember(const std::string& atomic, Value v);
  void AddRolePair(const std::string& role, Value from, Value to);

  /// I(b) for a basic concept.
  std::set<Value> Eval(const BasicConcept& b) const;
  /// I(r) for a basic role (inverses flip pairs).
  std::set<std::pair<Value, Value>> EvalRole(const Role& r) const;

  /// Whether this interpretation satisfies every axiom of the TBox.
  bool Satisfies(const TBox& tbox) const;

 private:
  std::map<std::string, std::set<Value>> concepts_;
  std::map<std::string, std::set<std::pair<Value, Value>>> roles_;
};

}  // namespace whynot::dl

#endif  // WHYNOT_DLLITE_REASONER_H_
