#ifndef WHYNOT_RELATIONAL_INSTANCE_H_
#define WHYNOT_RELATIONAL_INSTANCE_H_

#include <map>
#include <string>
#include <unordered_set>
#include <vector>

#include "whynot/common/status.h"
#include "whynot/common/value.h"
#include "whynot/relational/schema.h"

namespace whynot::rel {

/// A database instance over a schema (Section 2): a finite set of facts.
///
/// The instance holds facts for both data and view relations; view
/// extensions are filled in by MaterializeViews (views.h). Constraint
/// satisfaction is checked by SatisfiesConstraints, not enforced on insert,
/// so that tests can construct violating instances on purpose.
class Instance {
 public:
  explicit Instance(const Schema* schema);

  const Schema& schema() const { return *schema_; }

  /// Inserts the fact R(t). Fails if R is unknown or the arity mismatches.
  /// Duplicate facts are silently ignored (set semantics).
  Status AddFact(const std::string& relation, Tuple tuple);

  /// True iff the fact is present.
  bool Contains(const std::string& relation, const Tuple& tuple) const;

  /// Tuples of `relation` in insertion order. Empty for unknown relations.
  const std::vector<Tuple>& Relation(const std::string& relation) const;

  /// Number of facts across all relations.
  size_t NumFacts() const;

  /// Removes all tuples of `relation`.
  void ClearRelation(const std::string& relation);

  /// The active domain adom(I): all constants occurring in facts, sorted
  /// by the Value total order, deduplicated.
  std::vector<Value> ActiveDomain() const;

  /// Checks all FDs and IDs of the schema. Returns InvalidArgument with a
  /// description of the first violation found.
  Status SatisfiesConstraints() const;

  /// Multi-line table rendering of non-empty relations.
  std::string ToString() const;

 private:
  const Schema* schema_;
  std::map<std::string, std::vector<Tuple>> relations_;
  std::map<std::string, std::unordered_set<Tuple, TupleHash>> sets_;
  std::vector<Tuple> empty_;
};

}  // namespace whynot::rel

#endif  // WHYNOT_RELATIONAL_INSTANCE_H_
