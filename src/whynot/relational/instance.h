#ifndef WHYNOT_RELATIONAL_INSTANCE_H_
#define WHYNOT_RELATIONAL_INSTANCE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "whynot/common/dense_bitmap.h"
#include "whynot/common/hybrid_bitmap.h"
#include "whynot/common/status.h"
#include "whynot/common/value.h"
#include "whynot/relational/schema.h"

namespace whynot::rel {

/// Column-major, value-interned storage of one relation's facts. Every
/// constant is interned once into the owning Instance's ValuePool at
/// AddFact time; a relation of arity m holds m parallel `ValueId` columns
/// plus a dense fact index (row hash -> row ids) giving set semantics
/// without any boxed-tuple hashing on the hot paths.
class StoredRelation {
 public:
  /// Below this many rows, building a column index costs more than the
  /// scans it would save: the CQ evaluator, the conjunct evaluator, and
  /// the constraint checks fall back to direct column scans for smaller
  /// relations (the ⊑_S deciders evaluate one-shot queries over canonical
  /// instances of a handful of facts — index setup dominated there).
  static constexpr size_t kIndexMinRows = 32;

  /// Lazily built per-column join index: a CSR posting list (rows grouped
  /// by distinct ValueId, keys ascending by id) and the distinct-value
  /// DenseBitmap used as a word-parallel semi-join filter by the CQ
  /// evaluator. Maintained *incrementally*: appending facts does not
  /// discard a built index — the appended row suffix is merged into the
  /// posting lists on next access (one linear merge pass instead of a
  /// full re-sort), so workloads interleaving AddFact with evaluation
  /// (e.g. the strong_decide chase) keep warm indexes.
  struct ColumnIndex {
    std::vector<ValueId> keys;      // distinct ids, ascending
    std::vector<uint32_t> offsets;  // keys.size() + 1, CSR into rows
    std::vector<uint32_t> rows;     // row ids grouped by key
    DenseBitmap distinct;           // bitmap over keys (mutation phase)
    // Frozen sparse form of `distinct` (WarmForConcurrentReads applies the
    // freeze rule; mutually exclusive with a populated `distinct`). Merging
    // appended rows thaws back to the flat mirror first.
    HybridBitmap distinct_hybrid;

    /// Membership in the distinct-value set under either representation.
    bool DistinctTest(ValueId id) const {
      if (!distinct_hybrid.empty()) return distinct_hybrid.Test(id);
      return distinct.Test(id);
    }

    /// Heap bytes resident in this index.
    size_t MemoryBytes() const {
      return keys.capacity() * sizeof(ValueId) +
             (offsets.capacity() + rows.capacity()) * sizeof(uint32_t) +
             (distinct.MemoryBytes() - sizeof(DenseBitmap)) +
             (distinct_hybrid.MemoryBytes() - sizeof(HybridBitmap));
    }
  };

  size_t arity() const { return columns_.size(); }
  size_t num_rows() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  /// Column `attr` in row order.
  const std::vector<ValueId>& Column(size_t attr) const {
    return columns_[attr];
  }
  ValueId At(size_t row, size_t attr) const { return columns_[attr][row]; }

  /// The lazily built index of column `attr`; invalidated by mutation.
  const ColumnIndex& Index(size_t attr) const;

  /// Rows whose column `attr` equals `id` (possibly empty). Pointers are
  /// valid until the next mutation of this relation.
  std::pair<const uint32_t*, const uint32_t*> RowsEqual(size_t attr,
                                                        ValueId id) const;

  /// True iff the id row is present (set semantics probe).
  bool ContainsRow(const std::vector<ValueId>& row) const;

  /// FNV-1a over an id row — the canonical hash for projected id tuples,
  /// shared with the constraint checks.
  static uint64_t HashIds(const std::vector<ValueId>& row);

  /// Heap + object bytes across columns, the fact index, and built column
  /// indexes (shallow for the boxed tuple view's Values).
  size_t MemoryBytes() const;

  /// Constructed by the owning Instance only (public for container
  /// emplacement).
  explicit StoredRelation(size_t arity)
      : columns_(arity),
        indexes_(arity),
        index_built_(arity, false),
        index_rows_(arity, 0) {}
  /// Copies the stored rows; lazy caches restart cold.
  StoredRelation(const StoredRelation& other)
      : num_rows_(other.num_rows_),
        columns_(other.columns_),
        row_hash_(other.row_hash_),
        indexes_(other.columns_.size()),
        index_built_(other.columns_.size(), false),
        index_rows_(other.columns_.size(), 0) {}
  StoredRelation& operator=(const StoredRelation&) = delete;

 private:
  friend class Instance;

  /// Appends the row if new; returns whether it was inserted.
  bool InsertRow(const std::vector<ValueId>& row);
  void Clear();
  void InvalidateIndexes() const;
  /// Merges rows [index_rows_[attr], num_rows_) into the built index.
  void MergeAppendedRows(size_t attr) const;
  /// Applies the freeze rule to a fully built index: sparse distinct sets
  /// convert to hybrid containers (read-only phase; Index() must have been
  /// called first so the index is built and merged).
  void FreezeIndex(size_t attr) const;

  bool RowEquals(uint32_t row, const std::vector<ValueId>& ids) const;

  size_t num_rows_ = 0;
  std::vector<std::vector<ValueId>> columns_;
  // Dense fact index: row hash -> rows with that hash (collision chain).
  std::unordered_map<uint64_t, std::vector<uint32_t>> row_hash_;
  mutable std::vector<ColumnIndex> indexes_;
  mutable std::vector<bool> index_built_;
  // Rows already merged into each built index; rows beyond are pending.
  mutable std::vector<size_t> index_rows_;
  // Boxed-tuple compatibility view, materialized on demand (suffix-appended
  // as rows grow; reset on Clear).
  mutable std::vector<Tuple> tuple_view_;
};

/// A database instance over a schema (Section 2): a finite set of facts.
///
/// Facts are stored columnar and value-interned (see StoredRelation); the
/// classic `std::vector<Tuple>` accessor survives as a lazily materialized
/// compatibility view, so existing call sites keep compiling, while the CQ
/// evaluator, the concept evaluators, and the constraint checkers operate
/// on `ValueId` columns directly.
///
/// The instance holds facts for both data and view relations; view
/// extensions are filled in by MaterializeViews (views.h). Constraint
/// satisfaction is checked by SatisfiesConstraints, not enforced on insert,
/// so that tests can construct violating instances on purpose.
///
/// NOTE: the lazy mutable caches (column indexes, tuple views, the active
/// domain snapshot) make an Instance single-threaded, const methods
/// included; give each thread its own copy.
class Instance {
 public:
  explicit Instance(const Schema* schema);

  Instance(const Instance& other);
  Instance& operator=(const Instance& other);
  Instance(Instance&&) = default;
  /// Not defaulted: assignment replaces the fact set, so the version must
  /// move past both operands' counters (see version()).
  Instance& operator=(Instance&& other) noexcept;

  const Schema& schema() const { return *schema_; }

  /// The pool interning every constant of the instance. Ids are assigned at
  /// AddFact time and stable for the lifetime of the instance.
  const ValuePool& pool() const { return pool_; }

  /// Id of `v` in the instance pool, or -1 if `v` occurs in no fact (and
  /// was never interned).
  ValueId LookupId(const Value& v) const { return pool_.Lookup(v); }

  /// Monotone mutation counter: bumped whenever the fact set actually
  /// changes (an inserted fact, a non-empty relation cleared), never by
  /// no-op duplicates or lazy cache builds. Monotone *per object*:
  /// copy/move assignment sets the target past both operands' counters,
  /// so replacing an instance's contents never reuses a version an
  /// observer recorded against the old contents. Warm caches keyed to an
  /// instance (ExplainSession's covers, extensions, lub state) record the
  /// version at warm time and rebuild deterministically when it moves,
  /// instead of serving stale extensions.
  uint64_t version() const { return version_; }

  /// Inserts the fact R(t). Fails if R is unknown or the arity mismatches.
  /// Duplicate facts are silently ignored (set semantics).
  Status AddFact(const std::string& relation, Tuple tuple);

  /// Id-space insert: `row` holds ids of this instance's pool (as produced
  /// by the id-space CQ evaluator). Same validation and set semantics as
  /// AddFact without re-hashing boxed Values.
  Status AddFactIds(const std::string& relation,
                    const std::vector<ValueId>& row);

  /// Capacity hint: pre-sizes the columns of `relation` for `extra_rows`
  /// further facts. No-op for unknown relations.
  void Reserve(const std::string& relation, size_t extra_rows);

  /// True iff the fact is present.
  bool Contains(const std::string& relation, const Tuple& tuple) const;

  /// Columnar store of `relation`, or nullptr if no fact was ever added
  /// (callers treat nullptr as the empty relation).
  const StoredRelation* Find(const std::string& relation) const;

  /// Tuples of `relation` in insertion order. Empty for unknown relations.
  /// Compatibility view over the columnar store, materialized on demand.
  const std::vector<Tuple>& Relation(const std::string& relation) const;

  /// Number of facts across all relations.
  size_t NumFacts() const;

  /// Removes all tuples of `relation`.
  void ClearRelation(const std::string& relation);

  /// The active domain adom(I): all constants occurring in facts, sorted
  /// by the Value total order, deduplicated. Maintained incrementally via
  /// per-id occurrence counts — an O(1) snapshot once built, not a rescan.
  const std::vector<Value>& ActiveDomain() const;

  /// adom(I) as pool ids, ascending in the Value total order.
  const std::vector<ValueId>& ActiveDomainIds() const;

  /// Checks all FDs and IDs of the schema. Returns InvalidArgument with a
  /// description of the first violation found.
  Status SatisfiesConstraints() const;

  /// Forces every lazily built cache — the pool's order index, the active
  /// domain snapshot, all column indexes, and the boxed tuple views — so
  /// that subsequent *const* access is genuinely read-only. The parallel
  /// execution layer calls this once before fanning readers of a shared
  /// instance out across pool workers (the lazy mutable caches otherwise
  /// make even const methods single-threaded; see the class NOTE above).
  void WarmForConcurrentReads() const;

  /// Heap + object bytes of the stored facts and warm caches: interned
  /// pool values (shallow), columns, fact hashes, column indexes, and the
  /// active-domain snapshot. Boxed compatibility views count shallow.
  size_t MemoryBytes() const;

  /// Multi-line table rendering of non-empty relations.
  std::string ToString() const;

 private:
  StoredRelation* RelationFor(const std::string& relation, size_t arity);
  void BumpRef(ValueId id);
  void DropRef(ValueId id);
  void EnsureActiveDomain() const;

  const Schema* schema_;
  ValuePool pool_;
  // deque: stable addresses as relations are added lazily.
  std::deque<StoredRelation> store_;
  std::unordered_map<std::string, size_t> store_index_;
  std::vector<Tuple> empty_;

  // Occurrence counts per ValueId across all facts; the active domain is
  // the ids with positive count, kept as a cached sorted snapshot.
  std::vector<int64_t> refcount_;
  uint64_t version_ = 0;
  mutable std::vector<Value> adom_values_;
  mutable std::vector<ValueId> adom_ids_;
  mutable bool adom_dirty_ = false;

  std::vector<ValueId> scratch_row_;
};

}  // namespace whynot::rel

#endif  // WHYNOT_RELATIONAL_INSTANCE_H_
