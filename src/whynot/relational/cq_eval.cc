#include "whynot/relational/cq_eval.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

namespace whynot::rel {

namespace {

/// Shared evaluation state for one CQ over one instance.
class Evaluator {
 public:
  Evaluator(const ConjunctiveQuery& query, const Instance& instance)
      : query_(query), instance_(instance) {
    // Index comparisons by variable for early filtering.
    for (const Comparison& cmp : query.comparisons) {
      filters_[cmp.var].push_back(&cmp);
    }
    OrderAtoms();
  }

  /// Runs the backtracking join. If `first_only`, stops after one match.
  /// Appends head projections of matches to `out` (unsorted, may contain
  /// duplicates).
  bool Run(bool first_only, std::vector<Tuple>* out) {
    found_ = false;
    first_only_ = first_only;
    out_ = out;
    Descend(0);
    return found_;
  }

 private:
  void OrderAtoms() {
    // Greedy: repeatedly pick the unplaced atom sharing the most variables
    // with already-bound ones (ties: more constants, then original order).
    std::vector<const Atom*> remaining;
    for (const Atom& a : query_.atoms) remaining.push_back(&a);
    std::set<std::string> bound;
    while (!remaining.empty()) {
      size_t best = 0;
      int best_score = -1;
      for (size_t i = 0; i < remaining.size(); ++i) {
        int shared = 0;
        int consts = 0;
        for (const Term& t : remaining[i]->args) {
          if (t.is_var()) {
            if (bound.count(t.var()) > 0) ++shared;
          } else {
            ++consts;
          }
        }
        int score = shared * 100 + consts;
        if (score > best_score) {
          best_score = score;
          best = i;
        }
      }
      for (const Term& t : remaining[best]->args) {
        if (t.is_var()) bound.insert(t.var());
      }
      ordered_.push_back(remaining[best]);
      remaining.erase(remaining.begin() + static_cast<long>(best));
    }
  }

  bool PassesFilters(const std::string& var, const Value& v) const {
    auto it = filters_.find(var);
    if (it == filters_.end()) return true;
    for (const Comparison* cmp : it->second) {
      if (!EvalCmp(v, cmp->op, cmp->constant)) return false;
    }
    return true;
  }

  void Descend(size_t atom_idx) {
    if (found_ && first_only_) return;
    if (atom_idx == ordered_.size()) {
      found_ = true;
      if (out_ != nullptr) {
        Tuple head;
        head.reserve(query_.head.size());
        for (const std::string& v : query_.head) head.push_back(binding_.at(v));
        out_->push_back(std::move(head));
      }
      return;
    }
    const Atom& atom = *ordered_[atom_idx];
    for (const Tuple& tuple : instance_.Relation(atom.relation)) {
      std::vector<std::string> newly_bound;
      bool match = true;
      for (size_t i = 0; i < atom.args.size() && match; ++i) {
        const Term& term = atom.args[i];
        const Value& v = tuple[i];
        if (!term.is_var()) {
          match = term.constant() == v;
          continue;
        }
        auto it = binding_.find(term.var());
        if (it != binding_.end()) {
          match = it->second == v;
        } else if (!PassesFilters(term.var(), v)) {
          match = false;
        } else {
          binding_.emplace(term.var(), v);
          newly_bound.push_back(term.var());
        }
      }
      if (match) Descend(atom_idx + 1);
      for (const std::string& v : newly_bound) binding_.erase(v);
      if (found_ && first_only_) return;
    }
  }

  const ConjunctiveQuery& query_;
  const Instance& instance_;
  std::vector<const Atom*> ordered_;
  std::map<std::string, std::vector<const Comparison*>> filters_;
  std::map<std::string, Value> binding_;
  std::vector<Tuple>* out_ = nullptr;
  bool found_ = false;
  bool first_only_ = false;
};

void SortDedup(std::vector<Tuple>* tuples) {
  std::sort(tuples->begin(), tuples->end());
  tuples->erase(std::unique(tuples->begin(), tuples->end()), tuples->end());
}

}  // namespace

Result<std::vector<Tuple>> Evaluate(const ConjunctiveQuery& query,
                                    const Instance& instance) {
  WHYNOT_RETURN_IF_ERROR(query.Validate(instance.schema()));
  std::vector<Tuple> out;
  Evaluator eval(query, instance);
  eval.Run(/*first_only=*/false, &out);
  SortDedup(&out);
  return out;
}

Result<std::vector<Tuple>> Evaluate(const UnionQuery& query,
                                    const Instance& instance) {
  WHYNOT_RETURN_IF_ERROR(query.Validate(instance.schema()));
  std::vector<Tuple> out;
  for (const ConjunctiveQuery& cq : query.disjuncts) {
    Evaluator eval(cq, instance);
    eval.Run(/*first_only=*/false, &out);
  }
  SortDedup(&out);
  return out;
}

Result<bool> HasMatch(const ConjunctiveQuery& query,
                      const Instance& instance) {
  WHYNOT_RETURN_IF_ERROR(query.Validate(instance.schema()));
  Evaluator eval(query, instance);
  return eval.Run(/*first_only=*/true, nullptr);
}

}  // namespace whynot::rel
