#include "whynot/relational/cq_eval.h"

#include <algorithm>
#include <limits>
#include <string>

#include "whynot/relational/interval.h"

namespace whynot::rel {

namespace {

/// Shared id-space evaluation state for one CQ over one instance. All
/// constants, comparisons, and variable occurrences are compiled to dense
/// ids up front; the backtracking join then runs entirely on ValueId
/// columns.
class Evaluator {
 public:
  Evaluator(const ConjunctiveQuery& query, const Instance& instance)
      : query_(query), instance_(instance), pool_(instance.pool()) {
    Compile();
    if (feasible_) OrderAtoms();
  }

  /// Runs the backtracking join. If `first_only`, stops after one match.
  /// Appends head projections of matches to `out` (unsorted, may contain
  /// duplicates).
  bool Run(bool first_only, std::vector<std::vector<ValueId>>* out) {
    found_ = false;
    if (!feasible_) return false;
    first_only_ = first_only;
    out_ = out;
    Descend(0);
    return found_;
  }

 private:
  struct CompiledTerm {
    bool is_var = false;
    int var = -1;           // dense variable index when is_var
    ValueId const_id = -1;  // interned constant id otherwise
  };

  struct CompiledAtom {
    const StoredRelation* rel = nullptr;
    std::vector<CompiledTerm> terms;
    // Large enough that posting lists and semi-join bitmaps pay for their
    // construction; small relations are scanned directly.
    bool indexed = false;
  };

  /// Per-variable join state, consolidated so setup is one allocation.
  struct VarState {
    ValueId binding = -1;  // -1 = unbound
    RankRange range{0, 0};
    bool has_filter = false;
  };

  // CQs have a handful of variables; a linear scan over a small vector of
  // name pointers (the strings live in the query) beats tree/hash lookups
  // and their node allocations in the one-shot queries the ⊑_S deciders
  // evaluate over canonical instances.
  int VarIndex(const std::string& name) {
    for (size_t i = 0; i < var_names_.size(); ++i) {
      if (*var_names_[i] == name) return static_cast<int>(i);
    }
    var_names_.push_back(&name);
    return static_cast<int>(var_names_.size()) - 1;
  }

  int FindVar(const std::string& name) const {
    for (size_t i = 0; i < var_names_.size(); ++i) {
      if (*var_names_[i] == name) return static_cast<int>(i);
    }
    return -1;
  }

  void Compile() {
    // Atoms: resolve relations and intern constants. A constant that was
    // never interned, or an empty relation, makes the CQ unsatisfiable.
    atoms_.reserve(query_.atoms.size());
    for (const Atom& atom : query_.atoms) {
      CompiledAtom ca;
      ca.rel = instance_.Find(atom.relation);
      if (ca.rel == nullptr || ca.rel->empty()) {
        feasible_ = false;
        return;
      }
      ca.indexed = ca.rel->num_rows() >= StoredRelation::kIndexMinRows;
      ca.terms.reserve(atom.args.size());
      for (const Term& term : atom.args) {
        CompiledTerm ct;
        if (term.is_var()) {
          ct.is_var = true;
          ct.var = VarIndex(term.var());
        } else {
          ct.const_id = pool_.Lookup(term.constant());
          if (ct.const_id < 0) {
            feasible_ = false;
            return;
          }
        }
        ca.terms.push_back(ct);
      }
      atoms_.push_back(std::move(ca));
    }

    vars_.assign(var_names_.size(), VarState());

    // Comparison predicates, pre-resolved to rank ranges of the pool's
    // order-preserving index (variables only bind to interned values).
    for (const Comparison& cmp : query_.comparisons) {
      int v = FindVar(cmp.var);
      if (v < 0) continue;  // Validate() rejects this
      VarState& state = vars_[static_cast<size_t>(v)];
      if (!state.has_filter) {
        state.range = FullRankRange(pool_);
        state.has_filter = true;
      }
      state.range.IntersectWith(ResolveCmpRange(pool_, cmp.op, cmp.constant));
    }

    // Head projection indices, resolved once (emitting an answer must not
    // re-scan variable names per match).
    head_vars_.reserve(query_.head.size());
    for (const std::string& v : query_.head) head_vars_.push_back(FindVar(v));

    // Semi-join filters: the distinct-value bitmap of every *indexed*
    // column each variable occurs in. A candidate binding absent from any
    // of them cannot extend to a full match and is pruned at bind time.
    // Kept flat (var, bitmap) — the list is tiny and usually empty.
    for (const CompiledAtom& ca : atoms_) {
      if (!ca.indexed) continue;
      for (size_t pos = 0; pos < ca.terms.size(); ++pos) {
        const CompiledTerm& ct = ca.terms[pos];
        if (!ct.is_var) continue;
        filters_.emplace_back(ct.var, &ca.rel->Index(pos));
      }
    }
  }

  void OrderAtoms() {
    // Greedy: repeatedly pick the unplaced atom sharing the most variables
    // with already-bound ones (ties: more constants, then original order).
    std::vector<const CompiledAtom*> remaining;
    remaining.reserve(atoms_.size());
    for (const CompiledAtom& a : atoms_) remaining.push_back(&a);
    std::vector<bool> bound(var_names_.size(), false);
    while (!remaining.empty()) {
      size_t best = 0;
      int best_score = -1;
      for (size_t i = 0; i < remaining.size(); ++i) {
        int shared = 0;
        int consts = 0;
        for (const CompiledTerm& t : remaining[i]->terms) {
          if (t.is_var) {
            if (bound[static_cast<size_t>(t.var)]) ++shared;
          } else {
            ++consts;
          }
        }
        int score = shared * 100 + consts;
        if (score > best_score) {
          best_score = score;
          best = i;
        }
      }
      for (const CompiledTerm& t : remaining[best]->terms) {
        if (t.is_var) bound[static_cast<size_t>(t.var)] = true;
      }
      ordered_.push_back(remaining[best]);
      remaining.erase(remaining.begin() + static_cast<long>(best));
    }
  }

  bool AdmitsBinding(int var, ValueId id) const {
    const VarState& state = vars_[static_cast<size_t>(var)];
    if (state.has_filter && !state.range.Contains(pool_.Rank(id))) {
      return false;
    }
    for (const auto& [v, ix] : filters_) {
      if (v == var && !ix->DistinctTest(id)) return false;
    }
    return true;
  }

  /// Checks row `row` of `atom` against constants, bound variables, and
  /// filters; binds previously unbound variables (pushed onto the shared
  /// bind stack). On a non-match, already-made bindings are rolled back by
  /// the caller via the stack mark.
  bool MatchRow(const CompiledAtom& atom, size_t row) {
    for (size_t pos = 0; pos < atom.terms.size(); ++pos) {
      const CompiledTerm& term = atom.terms[pos];
      ValueId id = atom.rel->At(row, pos);
      if (!term.is_var) {
        if (term.const_id != id) return false;
        continue;
      }
      VarState& state = vars_[static_cast<size_t>(term.var)];
      if (state.binding >= 0) {
        if (state.binding != id) return false;
      } else if (!AdmitsBinding(term.var, id)) {
        return false;
      } else {
        state.binding = id;
        bind_stack_.push_back(term.var);
      }
    }
    return true;
  }

  void Descend(size_t atom_idx) {
    if (found_ && first_only_) return;
    if (atom_idx == ordered_.size()) {
      found_ = true;
      if (out_ != nullptr) {
        std::vector<ValueId> head;
        head.reserve(head_vars_.size());
        for (int v : head_vars_) {
          head.push_back(vars_[static_cast<size_t>(v)].binding);
        }
        out_->push_back(std::move(head));
      }
      return;
    }
    const CompiledAtom& atom = *ordered_[atom_idx];

    // Access path: probe the sorted posting list of the most selective
    // bound position (constant or already-bound variable); fall back to a
    // column-order scan when nothing is bound or the relation is too
    // small to be worth indexing.
    const uint32_t* begin = nullptr;
    const uint32_t* end = nullptr;
    bool have_posting = false;
    if (atom.indexed) {
      for (size_t pos = 0; pos < atom.terms.size(); ++pos) {
        const CompiledTerm& term = atom.terms[pos];
        ValueId id;
        if (!term.is_var) {
          id = term.const_id;
        } else {
          id = vars_[static_cast<size_t>(term.var)].binding;
          if (id < 0) continue;
        }
        auto [b, e] = atom.rel->RowsEqual(pos, id);
        if (!have_posting || e - b < end - begin) {
          begin = b;
          end = e;
          have_posting = true;
        }
        if (begin == end) break;  // provably empty
      }
    }

    size_t mark = bind_stack_.size();
    auto try_row = [&](size_t row) {
      if (MatchRow(atom, row)) {
        Descend(atom_idx + 1);
      }
      while (bind_stack_.size() > mark) {
        vars_[static_cast<size_t>(bind_stack_.back())].binding = -1;
        bind_stack_.pop_back();
      }
    };

    if (have_posting) {
      for (const uint32_t* r = begin; r != end; ++r) {
        try_row(*r);
        if (found_ && first_only_) return;
      }
    } else {
      size_t n = atom.rel->num_rows();
      for (size_t row = 0; row < n; ++row) {
        try_row(row);
        if (found_ && first_only_) return;
      }
    }
  }

  const ConjunctiveQuery& query_;
  const Instance& instance_;
  const ValuePool& pool_;
  bool feasible_ = true;

  std::vector<const std::string*> var_names_;
  std::vector<int> head_vars_;
  std::vector<CompiledAtom> atoms_;
  std::vector<const CompiledAtom*> ordered_;
  std::vector<VarState> vars_;
  // (var, column index) semi-join filters; the index pointer is stable
  // (indexes_ is sized at relation construction) and its distinct set is
  // probed representation-agnostically via DistinctTest.
  std::vector<std::pair<int, const StoredRelation::ColumnIndex*>> filters_;
  std::vector<int> bind_stack_;  // vars bound, in bind order

  std::vector<std::vector<ValueId>>* out_ = nullptr;
  bool found_ = false;
  bool first_only_ = false;
};

/// Sorts id rows lexicographically in the Value total order (via the
/// pool's rank index) and deduplicates.
void SortDedupIds(const ValuePool& pool,
                  std::vector<std::vector<ValueId>>* rows) {
  std::sort(rows->begin(), rows->end(),
            [&pool](const std::vector<ValueId>& a,
                    const std::vector<ValueId>& b) {
              size_t n = std::min(a.size(), b.size());
              for (size_t i = 0; i < n; ++i) {
                if (a[i] != b[i]) return pool.Rank(a[i]) < pool.Rank(b[i]);
              }
              return a.size() < b.size();
            });
  rows->erase(std::unique(rows->begin(), rows->end()), rows->end());
}

std::vector<Tuple> IdsToTuples(const ValuePool& pool,
                               const std::vector<std::vector<ValueId>>& rows) {
  std::vector<Tuple> out;
  out.reserve(rows.size());
  for (const std::vector<ValueId>& row : rows) {
    Tuple t;
    t.reserve(row.size());
    for (ValueId id : row) t.push_back(pool.Get(id));
    out.push_back(std::move(t));
  }
  return out;
}

}  // namespace

Result<std::vector<std::vector<ValueId>>> EvaluateIds(
    const ConjunctiveQuery& query, const Instance& instance) {
  WHYNOT_RETURN_IF_ERROR(query.Validate(instance.schema()));
  std::vector<std::vector<ValueId>> out;
  Evaluator eval(query, instance);
  eval.Run(/*first_only=*/false, &out);
  SortDedupIds(instance.pool(), &out);
  return out;
}

Result<std::vector<std::vector<ValueId>>> EvaluateIds(
    const UnionQuery& query, const Instance& instance) {
  WHYNOT_RETURN_IF_ERROR(query.Validate(instance.schema()));
  std::vector<std::vector<ValueId>> out;
  for (const ConjunctiveQuery& cq : query.disjuncts) {
    Evaluator eval(cq, instance);
    eval.Run(/*first_only=*/false, &out);
  }
  SortDedupIds(instance.pool(), &out);
  return out;
}

Result<std::vector<Tuple>> Evaluate(const ConjunctiveQuery& query,
                                    const Instance& instance) {
  WHYNOT_ASSIGN_OR_RETURN(std::vector<std::vector<ValueId>> ids,
                          EvaluateIds(query, instance));
  return IdsToTuples(instance.pool(), ids);
}

Result<std::vector<Tuple>> Evaluate(const UnionQuery& query,
                                    const Instance& instance) {
  WHYNOT_ASSIGN_OR_RETURN(std::vector<std::vector<ValueId>> ids,
                          EvaluateIds(query, instance));
  return IdsToTuples(instance.pool(), ids);
}

Result<bool> HasMatch(const ConjunctiveQuery& query,
                      const Instance& instance) {
  WHYNOT_RETURN_IF_ERROR(query.Validate(instance.schema()));
  Evaluator eval(query, instance);
  return eval.Run(/*first_only=*/true, nullptr);
}

}  // namespace whynot::rel
