#include "whynot/relational/constraints.h"

#include <map>
#include <set>

#include "whynot/common/strings.h"
#include "whynot/relational/instance.h"
#include "whynot/relational/schema.h"

namespace whynot::rel {

namespace {

Status ValidateAttrs(const Schema& schema, const std::string& relation,
                     const std::vector<int>& attrs, const char* what) {
  const RelationDef* def = schema.Find(relation);
  if (def == nullptr) {
    return Status::NotFound(std::string(what) + " references unknown relation '" +
                            relation + "'");
  }
  for (int a : attrs) {
    if (a < 0 || static_cast<size_t>(a) >= def->arity()) {
      return Status::InvalidArgument(
          std::string(what) + " attribute index " + std::to_string(a) +
          " out of range for " + relation);
    }
  }
  return Status::OK();
}

std::vector<std::string> AttrNames(const Schema& schema,
                                   const std::string& relation,
                                   const std::vector<int>& attrs) {
  std::vector<std::string> names;
  const RelationDef* def = schema.Find(relation);
  names.reserve(attrs.size());
  for (int a : attrs) {
    names.push_back(def != nullptr ? def->AttrName(a) : std::to_string(a));
  }
  return names;
}

Tuple Project(const Tuple& t, const std::vector<int>& attrs) {
  Tuple out;
  out.reserve(attrs.size());
  for (int a : attrs) out.push_back(t[static_cast<size_t>(a)]);
  return out;
}

}  // namespace

Status FunctionalDependency::Validate(const Schema& schema) const {
  WHYNOT_RETURN_IF_ERROR(ValidateAttrs(schema, relation, lhs, "FD"));
  WHYNOT_RETURN_IF_ERROR(ValidateAttrs(schema, relation, rhs, "FD"));
  if (rhs.empty()) return Status::InvalidArgument("FD with empty RHS");
  return Status::OK();
}

std::string FunctionalDependency::ToString(const Schema& schema) const {
  return relation + " : " + Join(AttrNames(schema, relation, lhs), ", ") +
         " -> " + Join(AttrNames(schema, relation, rhs), ", ");
}

Status InclusionDependency::Validate(const Schema& schema) const {
  WHYNOT_RETURN_IF_ERROR(ValidateAttrs(schema, lhs_relation, lhs_attrs, "ID"));
  WHYNOT_RETURN_IF_ERROR(ValidateAttrs(schema, rhs_relation, rhs_attrs, "ID"));
  if (lhs_attrs.size() != rhs_attrs.size() || lhs_attrs.empty()) {
    return Status::InvalidArgument("ID attribute lists must be equal-length "
                                   "and non-empty");
  }
  return Status::OK();
}

std::string InclusionDependency::ToString(const Schema& schema) const {
  return lhs_relation + "[" +
         Join(AttrNames(schema, lhs_relation, lhs_attrs), ", ") + "] <= " +
         rhs_relation + "[" +
         Join(AttrNames(schema, rhs_relation, rhs_attrs), ", ") + "]";
}

bool SatisfiesFd(const Instance& instance, const FunctionalDependency& fd,
                 std::string* violation) {
  std::map<Tuple, Tuple> seen;  // lhs projection -> rhs projection
  for (const Tuple& t : instance.Relation(fd.relation)) {
    Tuple key = Project(t, fd.lhs);
    Tuple val = Project(t, fd.rhs);
    auto [it, inserted] = seen.emplace(std::move(key), val);
    if (!inserted && it->second != val) {
      if (violation != nullptr) {
        *violation = fd.ToString(instance.schema()) + " on tuples with key " +
                     TupleToString(it->first);
      }
      return false;
    }
  }
  return true;
}

bool SatisfiesId(const Instance& instance, const InclusionDependency& id,
                 std::string* violation) {
  std::set<Tuple> rhs;
  for (const Tuple& t : instance.Relation(id.rhs_relation)) {
    rhs.insert(Project(t, id.rhs_attrs));
  }
  for (const Tuple& t : instance.Relation(id.lhs_relation)) {
    Tuple key = Project(t, id.lhs_attrs);
    if (rhs.count(key) == 0) {
      if (violation != nullptr) {
        *violation = id.ToString(instance.schema()) + " misses " +
                     TupleToString(key);
      }
      return false;
    }
  }
  return true;
}

}  // namespace whynot::rel
