#include "whynot/relational/constraints.h"

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "whynot/common/strings.h"
#include "whynot/relational/instance.h"
#include "whynot/relational/schema.h"

namespace whynot::rel {

namespace {

Status ValidateAttrs(const Schema& schema, const std::string& relation,
                     const std::vector<int>& attrs, const char* what) {
  const RelationDef* def = schema.Find(relation);
  if (def == nullptr) {
    return Status::NotFound(std::string(what) + " references unknown relation '" +
                            relation + "'");
  }
  for (int a : attrs) {
    if (a < 0 || static_cast<size_t>(a) >= def->arity()) {
      return Status::InvalidArgument(
          std::string(what) + " attribute index " + std::to_string(a) +
          " out of range for " + relation);
    }
  }
  return Status::OK();
}

std::vector<std::string> AttrNames(const Schema& schema,
                                   const std::string& relation,
                                   const std::vector<int>& attrs) {
  std::vector<std::string> names;
  const RelationDef* def = schema.Find(relation);
  names.reserve(attrs.size());
  for (int a : attrs) {
    names.push_back(def != nullptr ? def->AttrName(a) : std::to_string(a));
  }
  return names;
}

/// Id-space row projection over the columnar store. Value interning is
/// injective, so id equality is exactly Value equality and the FD/ID checks
/// never need to touch boxed Values except to render a violation.
std::vector<ValueId> ProjectIds(const StoredRelation& rel, size_t row,
                                const std::vector<int>& attrs) {
  std::vector<ValueId> out;
  out.reserve(attrs.size());
  for (int a : attrs) out.push_back(rel.At(row, static_cast<size_t>(a)));
  return out;
}

Tuple IdsToTuple(const ValuePool& pool, const std::vector<ValueId>& ids) {
  Tuple out;
  out.reserve(ids.size());
  for (ValueId id : ids) out.push_back(pool.Get(id));
  return out;
}

struct IdVecHash {
  size_t operator()(const std::vector<ValueId>& ids) const {
    return static_cast<size_t>(StoredRelation::HashIds(ids));
  }
};

}  // namespace

Status FunctionalDependency::Validate(const Schema& schema) const {
  WHYNOT_RETURN_IF_ERROR(ValidateAttrs(schema, relation, lhs, "FD"));
  WHYNOT_RETURN_IF_ERROR(ValidateAttrs(schema, relation, rhs, "FD"));
  if (rhs.empty()) return Status::InvalidArgument("FD with empty RHS");
  return Status::OK();
}

std::string FunctionalDependency::ToString(const Schema& schema) const {
  return relation + " : " + Join(AttrNames(schema, relation, lhs), ", ") +
         " -> " + Join(AttrNames(schema, relation, rhs), ", ");
}

Status InclusionDependency::Validate(const Schema& schema) const {
  WHYNOT_RETURN_IF_ERROR(ValidateAttrs(schema, lhs_relation, lhs_attrs, "ID"));
  WHYNOT_RETURN_IF_ERROR(ValidateAttrs(schema, rhs_relation, rhs_attrs, "ID"));
  if (lhs_attrs.size() != rhs_attrs.size() || lhs_attrs.empty()) {
    return Status::InvalidArgument("ID attribute lists must be equal-length "
                                   "and non-empty");
  }
  return Status::OK();
}

std::string InclusionDependency::ToString(const Schema& schema) const {
  return lhs_relation + "[" +
         Join(AttrNames(schema, lhs_relation, lhs_attrs), ", ") + "] <= " +
         rhs_relation + "[" +
         Join(AttrNames(schema, rhs_relation, rhs_attrs), ", ") + "]";
}

bool SatisfiesFd(const Instance& instance, const FunctionalDependency& fd,
                 std::string* violation) {
  const StoredRelation* rel = instance.Find(fd.relation);
  if (rel == nullptr || rel->empty()) return true;
  // lhs id projection -> rhs id projection
  std::unordered_map<std::vector<ValueId>, std::vector<ValueId>, IdVecHash>
      seen;
  seen.reserve(rel->num_rows());
  for (size_t row = 0; row < rel->num_rows(); ++row) {
    std::vector<ValueId> key = ProjectIds(*rel, row, fd.lhs);
    std::vector<ValueId> val = ProjectIds(*rel, row, fd.rhs);
    auto [it, inserted] = seen.emplace(std::move(key), val);
    if (!inserted && it->second != val) {
      if (violation != nullptr) {
        *violation = fd.ToString(instance.schema()) + " on tuples with key " +
                     TupleToString(IdsToTuple(instance.pool(), it->first));
      }
      return false;
    }
  }
  return true;
}

bool SatisfiesId(const Instance& instance, const InclusionDependency& id,
                 std::string* violation) {
  const StoredRelation* lhs = instance.Find(id.lhs_relation);
  if (lhs == nullptr || lhs->empty()) return true;
  const StoredRelation* rhs = instance.Find(id.rhs_relation);

  // Unary IDs over index-worthy relations reduce to word-parallel
  // containment of the distinct-value bitmaps of the two columns.
  if (id.lhs_attrs.size() == 1 && rhs != nullptr && !rhs->empty() &&
      lhs->num_rows() >= StoredRelation::kIndexMinRows &&
      rhs->num_rows() >= StoredRelation::kIndexMinRows) {
    const StoredRelation::ColumnIndex& lix =
        lhs->Index(static_cast<size_t>(id.lhs_attrs[0]));
    const StoredRelation::ColumnIndex& rix =
        rhs->Index(static_cast<size_t>(id.rhs_attrs[0]));
    bool contained;
    if (lix.distinct_hybrid.empty() && rix.distinct_hybrid.empty()) {
      contained = lix.distinct.SubsetOf(rix.distinct);
    } else if (!lix.distinct_hybrid.empty() && !rix.distinct_hybrid.empty()) {
      contained = lix.distinct_hybrid.SubsetOf(rix.distinct_hybrid);
    } else {
      // Mixed representations: probe the lhs distinct keys (sorted,
      // exactly the lhs set) against the rhs membership.
      contained = true;
      for (ValueId key : lix.keys) {
        if (!rix.DistinctTest(key)) {
          contained = false;
          break;
        }
      }
    }
    if (contained) return true;
    if (violation != nullptr) {
      for (ValueId key : lix.keys) {
        if (!rix.DistinctTest(key)) {
          *violation = id.ToString(instance.schema()) + " misses " +
                       TupleToString({instance.pool().Get(key)});
          break;
        }
      }
    }
    return false;
  }

  std::unordered_set<std::vector<ValueId>, IdVecHash> rhs_keys;
  if (rhs != nullptr) {
    rhs_keys.reserve(rhs->num_rows());
    for (size_t row = 0; row < rhs->num_rows(); ++row) {
      rhs_keys.insert(ProjectIds(*rhs, row, id.rhs_attrs));
    }
  }
  for (size_t row = 0; row < lhs->num_rows(); ++row) {
    std::vector<ValueId> key = ProjectIds(*lhs, row, id.lhs_attrs);
    if (rhs_keys.count(key) == 0) {
      if (violation != nullptr) {
        *violation = id.ToString(instance.schema()) + " misses " +
                     TupleToString(IdsToTuple(instance.pool(), key));
      }
      return false;
    }
  }
  return true;
}

}  // namespace whynot::rel
