#include "whynot/relational/instance.h"

#include <algorithm>
#include <set>

namespace whynot::rel {

Instance::Instance(const Schema* schema) : schema_(schema) {}

Status Instance::AddFact(const std::string& relation, Tuple tuple) {
  const RelationDef* def = schema_->Find(relation);
  if (def == nullptr) {
    return Status::NotFound("unknown relation '" + relation + "'");
  }
  if (def->arity() != tuple.size()) {
    return Status::InvalidArgument(
        "fact " + relation + TupleToString(tuple) + " has arity " +
        std::to_string(tuple.size()) + ", relation expects " +
        std::to_string(def->arity()));
  }
  auto& set = sets_[relation];
  if (set.insert(tuple).second) {
    relations_[relation].push_back(std::move(tuple));
  }
  return Status::OK();
}

bool Instance::Contains(const std::string& relation,
                        const Tuple& tuple) const {
  auto it = sets_.find(relation);
  return it != sets_.end() && it->second.count(tuple) > 0;
}

const std::vector<Tuple>& Instance::Relation(
    const std::string& relation) const {
  auto it = relations_.find(relation);
  return it == relations_.end() ? empty_ : it->second;
}

size_t Instance::NumFacts() const {
  size_t n = 0;
  for (const auto& [name, tuples] : relations_) n += tuples.size();
  return n;
}

void Instance::ClearRelation(const std::string& relation) {
  relations_.erase(relation);
  sets_.erase(relation);
}

std::vector<Value> Instance::ActiveDomain() const {
  std::set<Value> dom;
  for (const auto& [name, tuples] : relations_) {
    for (const Tuple& t : tuples) {
      for (const Value& v : t) dom.insert(v);
    }
  }
  return std::vector<Value>(dom.begin(), dom.end());
}

Status Instance::SatisfiesConstraints() const {
  std::string violation;
  for (const FunctionalDependency& fd : schema_->fds()) {
    if (!SatisfiesFd(*this, fd, &violation)) {
      return Status::InvalidArgument("FD violated: " + violation);
    }
  }
  for (const InclusionDependency& id : schema_->ids()) {
    if (!SatisfiesId(*this, id, &violation)) {
      return Status::InvalidArgument("ID violated: " + violation);
    }
  }
  return Status::OK();
}

std::string Instance::ToString() const {
  std::string out;
  for (const RelationDef& def : schema_->relations()) {
    const std::vector<Tuple>& tuples = Relation(def.name());
    if (tuples.empty()) continue;
    out += def.ToString() + ":\n";
    for (const Tuple& t : tuples) {
      out += "  " + TupleToString(t) + "\n";
    }
  }
  return out;
}

}  // namespace whynot::rel
