#include "whynot/relational/instance.h"

#include <algorithm>

namespace whynot::rel {

// --- StoredRelation --------------------------------------------------------

uint64_t StoredRelation::HashIds(const std::vector<ValueId>& row) {
  uint64_t h = 1469598103934665603ull;
  for (ValueId id : row) {
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(id));
    h *= 1099511628211ull;
  }
  return h;
}

bool StoredRelation::RowEquals(uint32_t row,
                               const std::vector<ValueId>& ids) const {
  for (size_t a = 0; a < columns_.size(); ++a) {
    if (columns_[a][row] != ids[a]) return false;
  }
  return true;
}

bool StoredRelation::InsertRow(const std::vector<ValueId>& row) {
  std::vector<uint32_t>& bucket = row_hash_[HashIds(row)];
  for (uint32_t r : bucket) {
    if (RowEquals(r, row)) return false;
  }
  for (size_t a = 0; a < columns_.size(); ++a) {
    columns_[a].push_back(row[a]);
  }
  bucket.push_back(static_cast<uint32_t>(num_rows_++));
  // Built indexes stay valid for their row prefix; the appended suffix is
  // merged in on next access (MergeAppendedRows), not rebuilt from scratch.
  return true;
}

bool StoredRelation::ContainsRow(const std::vector<ValueId>& row) const {
  auto it = row_hash_.find(HashIds(row));
  if (it == row_hash_.end()) return false;
  for (uint32_t r : it->second) {
    if (RowEquals(r, row)) return true;
  }
  return false;
}

void StoredRelation::Clear() {
  num_rows_ = 0;
  for (std::vector<ValueId>& col : columns_) col.clear();
  row_hash_.clear();
  tuple_view_.clear();
  InvalidateIndexes();
}

void StoredRelation::InvalidateIndexes() const {
  std::fill(index_built_.begin(), index_built_.end(), false);
  std::fill(index_rows_.begin(), index_rows_.end(), 0);
}

void StoredRelation::MergeAppendedRows(size_t attr) const {
  ColumnIndex& ix = indexes_[attr];
  if (!ix.distinct_hybrid.empty()) {
    // Mutation resumed after a freeze: thaw back to the flat mirror (the
    // hybrid containers are immutable; the merge below Sets new keys).
    ix.distinct = DenseBitmap(ix.keys);
    ix.distinct_hybrid = HybridBitmap();
  }
  const std::vector<ValueId>& col = columns_[attr];
  std::vector<std::pair<ValueId, uint32_t>> pairs;
  pairs.reserve(col.size() - index_rows_[attr]);
  for (size_t r = index_rows_[attr]; r < col.size(); ++r) {
    pairs.emplace_back(col[r], static_cast<uint32_t>(r));
  }
  std::sort(pairs.begin(), pairs.end());

  // One linear pass merging the old CSR groups with the sorted appended
  // run; within a group old rows precede new ones (both ascending), so
  // posting lists stay sorted by row id.
  ColumnIndex merged;
  merged.keys.reserve(ix.keys.size() + pairs.size());
  merged.offsets.reserve(ix.keys.size() + pairs.size() + 1);
  merged.rows.reserve(ix.rows.size() + pairs.size());
  merged.distinct = std::move(ix.distinct);
  size_t k = 0;
  size_t p = 0;
  while (k < ix.keys.size() || p < pairs.size()) {
    ValueId key;
    if (p == pairs.size() ||
        (k < ix.keys.size() && ix.keys[k] <= pairs[p].first)) {
      key = ix.keys[k];
    } else {
      key = pairs[p].first;
      merged.distinct.Set(key);
    }
    merged.keys.push_back(key);
    merged.offsets.push_back(static_cast<uint32_t>(merged.rows.size()));
    if (k < ix.keys.size() && ix.keys[k] == key) {
      for (uint32_t r = ix.offsets[k]; r < ix.offsets[k + 1]; ++r) {
        merged.rows.push_back(ix.rows[r]);
      }
      ++k;
    }
    while (p < pairs.size() && pairs[p].first == key) {
      merged.rows.push_back(pairs[p].second);
      ++p;
    }
  }
  merged.offsets.push_back(static_cast<uint32_t>(merged.rows.size()));
  ix = std::move(merged);
  index_rows_[attr] = col.size();
}

const StoredRelation::ColumnIndex& StoredRelation::Index(size_t attr) const {
  ColumnIndex& ix = indexes_[attr];
  if (!index_built_[attr]) {
    const std::vector<ValueId>& col = columns_[attr];
    std::vector<std::pair<ValueId, uint32_t>> pairs;
    pairs.reserve(col.size());
    for (size_t r = 0; r < col.size(); ++r) {
      pairs.emplace_back(col[r], static_cast<uint32_t>(r));
    }
    std::sort(pairs.begin(), pairs.end());
    ix.keys.clear();
    ix.offsets.clear();
    ix.rows.clear();
    ix.rows.reserve(pairs.size());
    for (const auto& [id, row] : pairs) {
      if (ix.keys.empty() || ix.keys.back() != id) {
        ix.keys.push_back(id);
        ix.offsets.push_back(static_cast<uint32_t>(ix.rows.size()));
      }
      ix.rows.push_back(row);
    }
    ix.offsets.push_back(static_cast<uint32_t>(ix.rows.size()));
    ix.distinct = DenseBitmap(ix.keys);
    index_built_[attr] = true;
    index_rows_[attr] = col.size();
  } else if (index_rows_[attr] < num_rows_) {
    MergeAppendedRows(attr);
  }
  return ix;
}

void StoredRelation::FreezeIndex(size_t attr) const {
  ColumnIndex& ix = indexes_[attr];
  if (!index_built_[attr] || index_rows_[attr] < num_rows_) return;
  if (!ix.distinct_hybrid.empty()) return;  // already frozen
  if (ChooseHybridRep(ix.keys.size(), ix.distinct.num_words())) {
    ix.distinct_hybrid = HybridBitmap::FromSorted(ix.keys);
    ix.distinct = DenseBitmap();
  }
}

size_t StoredRelation::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  for (const std::vector<ValueId>& col : columns_) {
    bytes += col.capacity() * sizeof(ValueId);
  }
  bytes += row_hash_.bucket_count() * sizeof(void*);
  for (const auto& [hash, bucket] : row_hash_) {
    bytes += sizeof(hash) + sizeof(bucket) +
             bucket.capacity() * sizeof(uint32_t);
  }
  for (size_t a = 0; a < indexes_.size(); ++a) {
    bytes += sizeof(ColumnIndex);
    if (index_built_[a]) bytes += indexes_[a].MemoryBytes();
  }
  for (const Tuple& t : tuple_view_) {
    bytes += sizeof(Tuple) + t.capacity() * sizeof(Value);
  }
  return bytes;
}

std::pair<const uint32_t*, const uint32_t*> StoredRelation::RowsEqual(
    size_t attr, ValueId id) const {
  const ColumnIndex& ix = Index(attr);
  auto it = std::lower_bound(ix.keys.begin(), ix.keys.end(), id);
  if (it == ix.keys.end() || *it != id) {
    return {nullptr, nullptr};
  }
  size_t k = static_cast<size_t>(it - ix.keys.begin());
  return {ix.rows.data() + ix.offsets[k], ix.rows.data() + ix.offsets[k + 1]};
}

// --- Instance --------------------------------------------------------------

Instance::Instance(const Schema* schema) : schema_(schema) {}

Instance::Instance(const Instance& other)
    : schema_(other.schema_),
      pool_(other.pool_.Clone()),
      store_(other.store_),
      store_index_(other.store_index_),
      refcount_(other.refcount_),
      version_(other.version_),
      adom_dirty_(true) {}

Instance& Instance::operator=(const Instance& other) {
  if (this != &other) *this = Instance(other);
  return *this;
}

Instance& Instance::operator=(Instance&& other) noexcept {
  if (this == &other) return *this;
  // The new version must differ from anything an observer of *this may
  // have recorded AND reflect the source's mutation history.
  uint64_t bumped = std::max(version_, other.version_) + 1;
  schema_ = other.schema_;
  pool_ = std::move(other.pool_);
  store_ = std::move(other.store_);
  store_index_ = std::move(other.store_index_);
  refcount_ = std::move(other.refcount_);
  adom_values_ = std::move(other.adom_values_);
  adom_ids_ = std::move(other.adom_ids_);
  adom_dirty_ = other.adom_dirty_;
  scratch_row_ = std::move(other.scratch_row_);
  version_ = bumped;
  return *this;
}

StoredRelation* Instance::RelationFor(const std::string& relation,
                                      size_t arity) {
  auto it = store_index_.find(relation);
  if (it != store_index_.end()) return &store_[it->second];
  store_index_.emplace(relation, store_.size());
  store_.emplace_back(arity);
  return &store_.back();
}

void Instance::BumpRef(ValueId id) {
  if (static_cast<size_t>(id) >= refcount_.size()) {
    refcount_.resize(static_cast<size_t>(pool_.size()), 0);
  }
  if (refcount_[static_cast<size_t>(id)]++ == 0) adom_dirty_ = true;
}

void Instance::DropRef(ValueId id) {
  if (--refcount_[static_cast<size_t>(id)] == 0) adom_dirty_ = true;
}

Status Instance::AddFact(const std::string& relation, Tuple tuple) {
  const RelationDef* def = schema_->Find(relation);
  if (def == nullptr) {
    return Status::NotFound("unknown relation '" + relation + "'");
  }
  if (def->arity() != tuple.size()) {
    return Status::InvalidArgument(
        "fact " + relation + TupleToString(tuple) + " has arity " +
        std::to_string(tuple.size()) + ", relation expects " +
        std::to_string(def->arity()));
  }
  scratch_row_.clear();
  for (const Value& v : tuple) scratch_row_.push_back(pool_.Intern(v));
  StoredRelation* rel = RelationFor(relation, def->arity());
  if (rel->InsertRow(scratch_row_)) {
    for (ValueId id : scratch_row_) BumpRef(id);
    ++version_;
  }
  return Status::OK();
}

Status Instance::AddFactIds(const std::string& relation,
                            const std::vector<ValueId>& row) {
  const RelationDef* def = schema_->Find(relation);
  if (def == nullptr) {
    return Status::NotFound("unknown relation '" + relation + "'");
  }
  if (def->arity() != row.size()) {
    return Status::InvalidArgument(
        "id fact for " + relation + " has arity " +
        std::to_string(row.size()) + ", relation expects " +
        std::to_string(def->arity()));
  }
  for (ValueId id : row) {
    if (id < 0 || id >= pool_.size()) {
      return Status::InvalidArgument("id fact for " + relation +
                                     " references an id outside the pool");
    }
  }
  StoredRelation* rel = RelationFor(relation, def->arity());
  if (rel->InsertRow(row)) {
    for (ValueId id : row) BumpRef(id);
    ++version_;
  }
  return Status::OK();
}

void Instance::Reserve(const std::string& relation, size_t extra_rows) {
  const RelationDef* def = schema_->Find(relation);
  if (def == nullptr) return;
  StoredRelation* rel = RelationFor(relation, def->arity());
  for (std::vector<ValueId>& col : rel->columns_) {
    col.reserve(rel->num_rows_ + extra_rows);
  }
}

bool Instance::Contains(const std::string& relation,
                        const Tuple& tuple) const {
  auto it = store_index_.find(relation);
  if (it == store_index_.end()) return false;
  const StoredRelation& rel = store_[it->second];
  if (rel.arity() != tuple.size()) return false;
  std::vector<ValueId> row;
  row.reserve(tuple.size());
  for (const Value& v : tuple) {
    ValueId id = pool_.Lookup(v);
    if (id < 0) return false;
    row.push_back(id);
  }
  return rel.ContainsRow(row);
}

const StoredRelation* Instance::Find(const std::string& relation) const {
  auto it = store_index_.find(relation);
  return it == store_index_.end() ? nullptr : &store_[it->second];
}

const std::vector<Tuple>& Instance::Relation(
    const std::string& relation) const {
  auto it = store_index_.find(relation);
  if (it == store_index_.end()) return empty_;
  const StoredRelation& rel = store_[it->second];
  // Rows only ever grow between Clears, so the cached view is extended by
  // the missing suffix.
  while (rel.tuple_view_.size() < rel.num_rows_) {
    size_t r = rel.tuple_view_.size();
    Tuple t;
    t.reserve(rel.arity());
    for (size_t a = 0; a < rel.arity(); ++a) {
      t.push_back(pool_.Get(rel.At(r, a)));
    }
    rel.tuple_view_.push_back(std::move(t));
  }
  return rel.tuple_view_;
}

size_t Instance::NumFacts() const {
  size_t n = 0;
  for (const StoredRelation& rel : store_) n += rel.num_rows();
  return n;
}

void Instance::ClearRelation(const std::string& relation) {
  auto it = store_index_.find(relation);
  if (it == store_index_.end()) return;
  StoredRelation& rel = store_[it->second];
  if (!rel.empty()) ++version_;
  for (const std::vector<ValueId>& col : rel.columns_) {
    for (ValueId id : col) DropRef(id);
  }
  rel.Clear();
}

void Instance::EnsureActiveDomain() const {
  if (!adom_dirty_) return;
  adom_values_.clear();
  adom_ids_.clear();
  for (ValueId id : pool_.SortedIds()) {
    if (static_cast<size_t>(id) < refcount_.size() &&
        refcount_[static_cast<size_t>(id)] > 0) {
      adom_ids_.push_back(id);
      adom_values_.push_back(pool_.Get(id));
    }
  }
  adom_dirty_ = false;
}

const std::vector<Value>& Instance::ActiveDomain() const {
  EnsureActiveDomain();
  return adom_values_;
}

const std::vector<ValueId>& Instance::ActiveDomainIds() const {
  EnsureActiveDomain();
  return adom_ids_;
}

void Instance::WarmForConcurrentReads() const {
  pool_.SortedIds();  // also builds the rank array Rank() reads
  EnsureActiveDomain();
  for (const auto& [name, idx] : store_index_) {
    const StoredRelation& rel = store_[idx];
    Relation(name);  // boxed tuple view (instance-dependent ExtFns read it)
    for (size_t a = 0; a < rel.arity(); ++a) {
      rel.Index(a);
      // Read-only phase from here on: sparse distinct sets freeze to
      // hybrid containers (thawed automatically if mutation resumes).
      rel.FreezeIndex(a);
    }
  }
}

size_t Instance::MemoryBytes() const {
  size_t bytes = sizeof(*this);
  bytes += static_cast<size_t>(pool_.size()) * (sizeof(Value) + sizeof(ValueId));
  for (const StoredRelation& rel : store_) bytes += rel.MemoryBytes();
  bytes += refcount_.capacity() * sizeof(int64_t);
  bytes += adom_values_.capacity() * sizeof(Value);
  bytes += adom_ids_.capacity() * sizeof(ValueId);
  return bytes;
}

Status Instance::SatisfiesConstraints() const {
  std::string violation;
  for (const FunctionalDependency& fd : schema_->fds()) {
    if (!SatisfiesFd(*this, fd, &violation)) {
      return Status::InvalidArgument("FD violated: " + violation);
    }
  }
  for (const InclusionDependency& id : schema_->ids()) {
    if (!SatisfiesId(*this, id, &violation)) {
      return Status::InvalidArgument("ID violated: " + violation);
    }
  }
  return Status::OK();
}

std::string Instance::ToString() const {
  std::string out;
  for (const RelationDef& def : schema_->relations()) {
    const std::vector<Tuple>& tuples = Relation(def.name());
    if (tuples.empty()) continue;
    out += def.ToString() + ":\n";
    for (const Tuple& t : tuples) {
      out += "  " + TupleToString(t) + "\n";
    }
  }
  return out;
}

}  // namespace whynot::rel
