#include "whynot/relational/views.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "whynot/relational/cq_eval.h"

namespace whynot::rel {

Result<std::vector<std::string>> ViewTopologicalOrder(const Schema& schema) {
  WHYNOT_RETURN_IF_ERROR(schema.CheckViewsAcyclic());
  // "P depends on R" means R occurs in P's definition, so R must be
  // materialized before P.
  std::map<std::string, std::set<std::string>> deps;
  for (const ViewDef& v : schema.views()) deps[v.name];
  for (const auto& [from, to] : schema.ViewDependencies()) {
    deps[from].insert(to);
  }
  std::vector<std::string> order;
  std::set<std::string> done;
  while (order.size() < deps.size()) {
    bool progressed = false;
    for (const auto& [name, ds] : deps) {
      if (done.count(name) > 0) continue;
      bool ready = true;
      for (const std::string& d : ds) {
        if (done.count(d) == 0) ready = false;
      }
      if (ready) {
        order.push_back(name);
        done.insert(name);
        progressed = true;
      }
    }
    if (!progressed) {
      return Status::Internal("view dependency cycle slipped past validation");
    }
  }
  return order;
}

Status MaterializeViews(Instance* instance) {
  const Schema& schema = instance->schema();
  WHYNOT_ASSIGN_OR_RETURN(std::vector<std::string> order,
                          ViewTopologicalOrder(schema));
  for (const std::string& name : order) instance->ClearRelation(name);
  for (const std::string& name : order) {
    const ViewDef* def = schema.FindView(name);
    if (def == nullptr) return Status::Internal("missing view def: " + name);
    // Id-space pipeline: the view body is evaluated over the interned
    // columns and its answers are inserted as id rows — no boxed tuple is
    // materialized anywhere between base facts and view extension.
    WHYNOT_ASSIGN_OR_RETURN(std::vector<std::vector<ValueId>> rows,
                            EvaluateIds(def->definition, *instance));
    instance->Reserve(name, rows.size());
    for (const std::vector<ValueId>& row : rows) {
      WHYNOT_RETURN_IF_ERROR(instance->AddFactIds(name, row));
    }
  }
  return Status::OK();
}

namespace {

/// Expands the first view atom of `cq` (if any). Returns true if an
/// expansion happened, appending the resulting CQs to `out`.
Result<bool> ExpandOneStep(const ConjunctiveQuery& cq, const Schema& schema,
                           int* fresh_counter,
                           std::vector<ConjunctiveQuery>* out) {
  size_t view_idx = cq.atoms.size();
  const ViewDef* view = nullptr;
  for (size_t i = 0; i < cq.atoms.size(); ++i) {
    const RelationDef* def = schema.Find(cq.atoms[i].relation);
    if (def == nullptr) {
      return Status::NotFound("unknown relation '" + cq.atoms[i].relation +
                              "'");
    }
    if (def->is_view()) {
      view_idx = i;
      view = schema.FindView(cq.atoms[i].relation);
      break;
    }
  }
  if (view == nullptr) return false;

  const Atom& view_atom = cq.atoms[view_idx];
  for (const ConjunctiveQuery& body : view->definition.disjuncts) {
    // Map the body's head variables to the atom's terms, everything else
    // to fresh variables.
    std::map<std::string, Term> subst;
    for (size_t i = 0; i < body.head.size(); ++i) {
      subst.emplace(body.head[i], view_atom.args[i]);
    }
    auto substituted = [&](const std::string& var) -> Term {
      auto it = subst.find(var);
      if (it != subst.end()) return it->second;
      Term fresh = Term::Var("_v" + std::to_string((*fresh_counter)++));
      subst.emplace(var, fresh);
      return fresh;
    };

    ConjunctiveQuery expanded;
    expanded.head = cq.head;
    for (size_t i = 0; i < cq.atoms.size(); ++i) {
      if (i != view_idx) expanded.atoms.push_back(cq.atoms[i]);
    }
    expanded.comparisons = cq.comparisons;

    bool unsatisfiable = false;
    for (const Atom& atom : body.atoms) {
      Atom copy;
      copy.relation = atom.relation;
      for (const Term& t : atom.args) {
        copy.args.push_back(t.is_var() ? substituted(t.var()) : t);
      }
      expanded.atoms.push_back(std::move(copy));
    }
    for (const Comparison& cmp : body.comparisons) {
      Term t = substituted(cmp.var);
      if (t.is_var()) {
        expanded.comparisons.push_back({t.var(), cmp.op, cmp.constant});
      } else if (!EvalCmp(t.constant(), cmp.op, cmp.constant)) {
        unsatisfiable = true;
        break;
      }
      // A true constant comparison is simply dropped.
    }
    if (!unsatisfiable) out->push_back(std::move(expanded));
  }
  return true;
}

}  // namespace

Result<UnionQuery> ExpandViews(const UnionQuery& query, const Schema& schema,
                               size_t max_disjuncts, size_t max_atoms) {
  WHYNOT_RETURN_IF_ERROR(schema.CheckViewsAcyclic());
  int fresh_counter = 0;
  std::deque<ConjunctiveQuery> work(query.disjuncts.begin(),
                                    query.disjuncts.end());
  UnionQuery result;
  while (!work.empty()) {
    ConjunctiveQuery cq = std::move(work.front());
    work.pop_front();
    if (cq.atoms.size() > max_atoms) {
      return Status::ResourceExhausted(
          "view expansion exceeded max_atoms; nested UCQ-view expansion is "
          "exponential in general (Table 1, CONEXPTIME row)");
    }
    std::vector<ConjunctiveQuery> expanded;
    WHYNOT_ASSIGN_OR_RETURN(bool did_expand,
                            ExpandOneStep(cq, schema, &fresh_counter,
                                          &expanded));
    if (!did_expand) {
      result.disjuncts.push_back(std::move(cq));
      if (result.disjuncts.size() > max_disjuncts) {
        return Status::ResourceExhausted(
            "view expansion exceeded max_disjuncts");
      }
      continue;
    }
    for (ConjunctiveQuery& e : expanded) work.push_back(std::move(e));
    if (work.size() + result.disjuncts.size() > max_disjuncts) {
      return Status::ResourceExhausted("view expansion exceeded max_disjuncts");
    }
  }
  // Note: if every disjunct was unsatisfiable (a constant comparison in a
  // view body failed), the result has zero disjuncts; callers treat that as
  // the empty query.
  return result;
}

Result<UnionQuery> ExpandViews(const ConjunctiveQuery& query,
                               const Schema& schema, size_t max_disjuncts,
                               size_t max_atoms) {
  UnionQuery u;
  u.disjuncts.push_back(query);
  return ExpandViews(u, schema, max_disjuncts, max_atoms);
}

}  // namespace whynot::rel
