#include "whynot/relational/cq.h"

#include <algorithm>
#include <set>

#include "whynot/common/strings.h"
#include "whynot/relational/schema.h"

namespace whynot::rel {

const char* CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

bool EvalCmp(const Value& lhs, CmpOp op, const Value& rhs) {
  switch (op) {
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kGt:
      return lhs > rhs;
    case CmpOp::kLe:
      return lhs <= rhs;
    case CmpOp::kGe:
      return lhs >= rhs;
  }
  return false;
}

Term Term::Var(std::string name) {
  Term t;
  t.is_var_ = true;
  t.var_ = std::move(name);
  return t;
}

Term Term::Const(Value v) {
  Term t;
  t.is_var_ = false;
  t.constant_ = std::move(v);
  return t;
}

std::string Term::ToString() const {
  return is_var_ ? var_ : constant_.ToLiteral();
}

bool Term::operator==(const Term& other) const {
  if (is_var_ != other.is_var_) return false;
  return is_var_ ? var_ == other.var_ : constant_ == other.constant_;
}

std::string Atom::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(args.size());
  for (const Term& t : args) parts.push_back(t.ToString());
  return relation + "(" + Join(parts, ", ") + ")";
}

std::string Comparison::ToString() const {
  return var + " " + CmpOpName(op) + " " + constant.ToLiteral();
}

Status ConjunctiveQuery::Validate(const Schema& schema) const {
  std::set<std::string> atom_vars;
  for (const Atom& atom : atoms) {
    const RelationDef* def = schema.Find(atom.relation);
    if (def == nullptr) {
      return Status::NotFound("unknown relation '" + atom.relation +
                              "' in query");
    }
    if (def->arity() != atom.args.size()) {
      return Status::InvalidArgument(
          "atom " + atom.ToString() + " has arity " +
          std::to_string(atom.args.size()) + ", relation expects " +
          std::to_string(def->arity()));
    }
    for (const Term& t : atom.args) {
      if (t.is_var()) atom_vars.insert(t.var());
    }
  }
  for (const std::string& v : head) {
    if (atom_vars.count(v) == 0) {
      return Status::InvalidArgument("head variable '" + v +
                                     "' does not occur in any atom");
    }
  }
  for (const Comparison& cmp : comparisons) {
    if (atom_vars.count(cmp.var) == 0) {
      return Status::InvalidArgument("comparison variable '" + cmp.var +
                                     "' does not occur in any atom");
    }
  }
  return Status::OK();
}

std::vector<std::string> ConjunctiveQuery::Variables() const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const Atom& atom : atoms) {
    for (const Term& t : atom.args) {
      if (t.is_var() && seen.insert(t.var()).second) out.push_back(t.var());
    }
  }
  return out;
}

std::string ConjunctiveQuery::ToString() const {
  std::vector<std::string> body;
  body.reserve(atoms.size() + comparisons.size());
  for (const Atom& a : atoms) body.push_back(a.ToString());
  for (const Comparison& c : comparisons) body.push_back(c.ToString());
  return "q(" + Join(head, ", ") + ") :- " + Join(body, ", ");
}

Status UnionQuery::Validate(const Schema& schema) const {
  if (disjuncts.empty()) {
    return Status::InvalidArgument("union query has no disjuncts");
  }
  size_t ar = disjuncts.front().arity();
  for (const ConjunctiveQuery& cq : disjuncts) {
    if (cq.arity() != ar) {
      return Status::InvalidArgument("union query disjuncts disagree on arity");
    }
    WHYNOT_RETURN_IF_ERROR(cq.Validate(schema));
  }
  return Status::OK();
}

std::string UnionQuery::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(disjuncts.size());
  for (const ConjunctiveQuery& cq : disjuncts) parts.push_back(cq.ToString());
  return Join(parts, "  |  ");
}

}  // namespace whynot::rel
