#ifndef WHYNOT_RELATIONAL_CQ_EVAL_H_
#define WHYNOT_RELATIONAL_CQ_EVAL_H_

#include <vector>

#include "whynot/common/status.h"
#include "whynot/common/value.h"
#include "whynot/relational/cq.h"
#include "whynot/relational/instance.h"

namespace whynot::rel {

/// Evaluates a conjunctive query over an instance under set semantics.
/// Answers are returned sorted and deduplicated. Comparisons are evaluated
/// under the Value total order.
///
/// The evaluator is a backtracking join: atoms are reordered greedily so
/// that atoms sharing variables with already-bound atoms come first, and
/// per-variable comparison filters are applied as soon as the variable is
/// bound.
Result<std::vector<Tuple>> Evaluate(const ConjunctiveQuery& query,
                                    const Instance& instance);

/// Evaluates a union of conjunctive queries (set semantics, sorted).
Result<std::vector<Tuple>> Evaluate(const UnionQuery& query,
                                    const Instance& instance);

/// True iff the Boolean query (head ignored) has at least one satisfying
/// assignment.
Result<bool> HasMatch(const ConjunctiveQuery& query, const Instance& instance);

}  // namespace whynot::rel

#endif  // WHYNOT_RELATIONAL_CQ_EVAL_H_
