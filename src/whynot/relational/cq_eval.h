#ifndef WHYNOT_RELATIONAL_CQ_EVAL_H_
#define WHYNOT_RELATIONAL_CQ_EVAL_H_

#include <vector>

#include "whynot/common/status.h"
#include "whynot/common/value.h"
#include "whynot/relational/cq.h"
#include "whynot/relational/instance.h"

namespace whynot::rel {

/// Evaluates a conjunctive query over an instance under set semantics.
/// Answers are returned sorted and deduplicated. Comparisons are evaluated
/// under the Value total order.
///
/// The evaluator is an *id-space* backtracking join over the instance's
/// interned columns: atoms are reordered greedily so that atoms sharing
/// variables with already-bound atoms come first; constants and comparison
/// predicates are pre-resolved to ValueIds / rank ranges of the instance
/// pool; bound positions probe per-column sorted posting lists instead of
/// scanning; and candidate bindings are pruned early through the
/// DenseBitmap distinct-value filters of every column the variable occurs
/// in (word-parallel semi-join reduction). No boxed Value is touched until
/// answers are rendered.
Result<std::vector<Tuple>> Evaluate(const ConjunctiveQuery& query,
                                    const Instance& instance);

/// Evaluates a union of conjunctive queries (set semantics, sorted).
Result<std::vector<Tuple>> Evaluate(const UnionQuery& query,
                                    const Instance& instance);

/// Id-space evaluation: answers as rows of instance-pool ValueIds, sorted
/// lexicographically in the Value total order (same order as Evaluate) and
/// deduplicated. The zero-boxing path used by MaterializeViews and other
/// id-space consumers.
Result<std::vector<std::vector<ValueId>>> EvaluateIds(
    const ConjunctiveQuery& query, const Instance& instance);

/// Id-space evaluation of a union of conjunctive queries.
Result<std::vector<std::vector<ValueId>>> EvaluateIds(const UnionQuery& query,
                                                      const Instance& instance);

/// True iff the Boolean query (head ignored) has at least one satisfying
/// assignment.
Result<bool> HasMatch(const ConjunctiveQuery& query, const Instance& instance);

}  // namespace whynot::rel

#endif  // WHYNOT_RELATIONAL_CQ_EVAL_H_
