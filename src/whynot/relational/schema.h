#ifndef WHYNOT_RELATIONAL_SCHEMA_H_
#define WHYNOT_RELATIONAL_SCHEMA_H_

#include <map>
#include <string>
#include <vector>

#include "whynot/common/status.h"
#include "whynot/relational/constraints.h"
#include "whynot/relational/cq.h"

namespace whynot::rel {

/// A relation name with named attributes. Attribute positions are 0-based;
/// the paper's 1-based attribute numbers map to index + 1.
class RelationDef {
 public:
  RelationDef(std::string name, std::vector<std::string> attrs,
              bool is_view = false)
      : name_(std::move(name)), attrs_(std::move(attrs)), is_view_(is_view) {}

  const std::string& name() const { return name_; }
  const std::vector<std::string>& attrs() const { return attrs_; }
  size_t arity() const { return attrs_.size(); }
  /// True iff this relation is defined by a UCQ-view definition.
  bool is_view() const { return is_view_; }

  /// 0-based position of the named attribute, or -1.
  int AttrIndex(const std::string& attr) const;
  /// Requires 0 <= i < arity().
  const std::string& AttrName(int i) const {
    return attrs_[static_cast<size_t>(i)];
  }

  /// "Cities(name, population, country, continent)".
  std::string ToString() const;

 private:
  std::string name_;
  std::vector<std::string> attrs_;
  bool is_view_;
};

/// A UCQ-view definition P(x̄) ↔ ∨ᵢ ϕᵢ(x̄) (Section 2). The disjunct CQs'
/// heads are the view's attribute variables, in order.
struct ViewDef {
  std::string name;
  UnionQuery definition;
};

/// A schema (S, Σ) in the sense of Section 2: relation names with arities
/// plus integrity constraints (FDs, IDs, and UCQ-view definitions, which
/// the paper treats as a special case of integrity constraints).
///
/// The relation set is partitioned into data relations D and view relations
/// V; every view relation has exactly one ViewDef.
class Schema {
 public:
  /// Adds a data relation. Fails on duplicate names or empty arity.
  Status AddRelation(const std::string& name,
                     const std::vector<std::string>& attrs);

  /// Adds a view relation together with its UCQ-view definition. The view's
  /// attributes are the head variables of the first disjunct.
  Status AddView(const std::string& name,
                 const std::vector<std::string>& attrs, UnionQuery definition);

  Status AddFd(FunctionalDependency fd);
  Status AddId(InclusionDependency id);

  const RelationDef* Find(const std::string& name) const;
  /// Requires the relation to exist.
  const RelationDef& Get(const std::string& name) const;
  /// The definition of view `name`, or nullptr if not a view.
  const ViewDef* FindView(const std::string& name) const;

  /// All relations (data + views) in insertion order.
  const std::vector<RelationDef>& relations() const { return relations_; }
  const std::vector<FunctionalDependency>& fds() const { return fds_; }
  const std::vector<InclusionDependency>& ids() const { return ids_; }
  const std::vector<ViewDef>& views() const { return views_; }

  bool HasViews() const { return !views_.empty(); }
  bool HasFds() const { return !fds_.empty(); }
  bool HasIds() const { return !ids_.empty(); }

  /// Whether P "depends on" R (directly): R occurs in P's view definition.
  /// Returns the full direct-dependency edge list over view names.
  std::vector<std::pair<std::string, std::string>> ViewDependencies() const;

  /// Checks that the "depends on" relation over views is acyclic (required
  /// for nested UCQ-view definitions, Section 2). OK for schemas without
  /// views.
  Status CheckViewsAcyclic() const;

  /// True iff every disjunct of every view definition contains at most one
  /// atom over V (linearly nested UCQ-view definitions, Section 2).
  bool ViewsAreLinear() const;

  /// True iff no view definition references another view (flat UCQ views).
  bool ViewsAreFlat() const;

  /// Validates all constraints against the relation definitions and view
  /// acyclicity.
  Status Validate() const;

  /// Multi-line rendering of relations and constraints (Figure 1 style).
  std::string ToString() const;

 private:
  std::vector<RelationDef> relations_;
  std::map<std::string, size_t> index_;
  std::vector<FunctionalDependency> fds_;
  std::vector<InclusionDependency> ids_;
  std::vector<ViewDef> views_;
  std::map<std::string, size_t> view_index_;
};

}  // namespace whynot::rel

#endif  // WHYNOT_RELATIONAL_SCHEMA_H_
