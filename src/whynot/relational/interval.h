#ifndef WHYNOT_RELATIONAL_INTERVAL_H_
#define WHYNOT_RELATIONAL_INTERVAL_H_

#include <optional>
#include <set>
#include <string>

#include "whynot/common/value.h"
#include "whynot/relational/cq.h"

namespace whynot::rel {

/// Interval constraints on a single term, accumulated from comparisons
/// `x op c` (Section 2 allows only comparisons against constants, so a
/// term's admissible set is always an interval of the dense order,
/// optionally degenerated to a point).
///
/// Shared by the ⊑_S deciders (schema_subsumption.cc) and the
/// strong-explanation decision procedure (strong_decide.cc).
struct IntervalConstraint {
  std::optional<Value> eq;
  std::optional<Value> lo;
  bool lo_strict = false;
  std::optional<Value> hi;
  bool hi_strict = false;
  bool empty = false;

  /// Narrows by `op c`; sets `empty` when the constraint becomes
  /// unsatisfiable. A strict gap lo < x < hi with lo < hi is satisfiable in
  /// the dense order.
  void Narrow(CmpOp op, const Value& c);

  /// Re-derives `empty`/`eq` after a bound update.
  void Normalize();

  /// Merges another constraint in (used when a chase unifies terms).
  void Merge(const IntervalConstraint& o);

  /// True iff every value satisfying this constraint satisfies `op c`.
  bool Entails(CmpOp op, const Value& c) const;

  /// True iff `v` satisfies the constraint.
  bool Admits(const Value& v) const;
};

/// Picks a witness value admitted by `interval` and not contained in
/// `used`, exploiting the density of the Value order (doubles between
/// numbers, suffix extension between strings). Returns nullopt when the
/// interval is empty, or in the (documented) corner cases where the
/// realized constant domain is not dense — e.g. two adjacent strings
/// "a" and "a\0" — or when `attempts` distinct candidates were all taken.
std::optional<Value> PickWitness(const IntervalConstraint& interval,
                                 const std::set<Value>& used,
                                 int attempts = 64);

/// A comparison `x op c` restricted to the values interned in a pool: a
/// half-open interval [lo, hi) of *ranks* in the pool's order index. Because
/// instance variables only ever bind to interned values, every comparison
/// predicate is pre-resolvable to such a range, turning per-probe Value
/// comparisons in the id-space join and the conjunct evaluator into one
/// integer range test.
struct RankRange {
  int32_t lo = 0;
  int32_t hi = 0;  // exclusive

  bool empty() const { return lo >= hi; }
  bool Contains(int32_t rank) const { return rank >= lo && rank < hi; }
  void IntersectWith(const RankRange& o) {
    if (o.lo > lo) lo = o.lo;
    if (o.hi < hi) hi = o.hi;
  }
};

/// The full range [0, pool.size()).
RankRange FullRankRange(const ValuePool& pool);

/// Resolves `x op c` to the rank interval it admits within `pool`. `c` need
/// not be interned.
RankRange ResolveCmpRange(const ValuePool& pool, CmpOp op, const Value& c);

}  // namespace whynot::rel

#endif  // WHYNOT_RELATIONAL_INTERVAL_H_
