#ifndef WHYNOT_RELATIONAL_CQ_H_
#define WHYNOT_RELATIONAL_CQ_H_

#include <string>
#include <vector>

#include "whynot/common/status.h"
#include "whynot/common/value.h"

namespace whynot::rel {

class Schema;

/// Comparison operator usable against constants (Section 2 of the paper:
/// comparisons of the form `x op c`; variable-variable comparisons are not
/// allowed).
enum class CmpOp { kEq, kLt, kGt, kLe, kGe };

/// "=", "<", ">", "<=", ">=".
const char* CmpOpName(CmpOp op);

/// Evaluates `lhs op rhs` under the total order on Value.
bool EvalCmp(const Value& lhs, CmpOp op, const Value& rhs);

/// A term of an atom: either a variable (by name) or a constant.
class Term {
 public:
  static Term Var(std::string name);
  static Term Const(Value v);

  bool is_var() const { return is_var_; }
  /// Requires is_var().
  const std::string& var() const { return var_; }
  /// Requires !is_var().
  const Value& constant() const { return constant_; }

  std::string ToString() const;
  bool operator==(const Term& other) const;

 private:
  bool is_var_ = false;
  std::string var_;
  Value constant_;
};

/// A relational atom R(t1, ..., tk).
struct Atom {
  std::string relation;
  std::vector<Term> args;

  std::string ToString() const;
};

/// A comparison atom `var op constant`.
struct Comparison {
  std::string var;
  CmpOp op;
  Value constant;

  std::string ToString() const;
};

/// A conjunctive query with comparisons to constants (Section 2):
/// q(head) :- atoms, comparisons. Variables not in the head are
/// existentially quantified. The head may not repeat variables of the body
/// that do not occur in any relational atom.
struct ConjunctiveQuery {
  std::vector<std::string> head;
  std::vector<Atom> atoms;
  std::vector<Comparison> comparisons;

  size_t arity() const { return head.size(); }

  /// Checks arities against the schema, that every head and comparison
  /// variable occurs in some relational atom, and that atoms reference
  /// known relations.
  Status Validate(const Schema& schema) const;

  /// All distinct variable names, body-atom variables first, in order of
  /// first occurrence.
  std::vector<std::string> Variables() const;

  /// "q(x, y) :- R(x, z), S(z, y), z >= 5".
  std::string ToString() const;
};

/// A union of conjunctive queries, all of the same arity.
struct UnionQuery {
  std::vector<ConjunctiveQuery> disjuncts;

  size_t arity() const {
    return disjuncts.empty() ? 0 : disjuncts.front().arity();
  }

  /// Validates every disjunct and that arities agree.
  Status Validate(const Schema& schema) const;

  std::string ToString() const;
};

}  // namespace whynot::rel

#endif  // WHYNOT_RELATIONAL_CQ_H_
