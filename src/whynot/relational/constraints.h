#ifndef WHYNOT_RELATIONAL_CONSTRAINTS_H_
#define WHYNOT_RELATIONAL_CONSTRAINTS_H_

#include <string>
#include <vector>

#include "whynot/common/status.h"

namespace whynot::rel {

class Schema;
class Instance;

/// A functional dependency R : X -> Y (Section 2). Attribute positions are
/// 0-based indices into the relation's attribute list; rendering uses the
/// schema's attribute names.
struct FunctionalDependency {
  std::string relation;
  std::vector<int> lhs;
  std::vector<int> rhs;

  Status Validate(const Schema& schema) const;
  std::string ToString(const Schema& schema) const;
};

/// An inclusion dependency R[A1..An] ⊆ S[B1..Bn] (Section 2), with 0-based
/// attribute positions.
struct InclusionDependency {
  std::string lhs_relation;
  std::vector<int> lhs_attrs;
  std::string rhs_relation;
  std::vector<int> rhs_attrs;

  Status Validate(const Schema& schema) const;
  std::string ToString(const Schema& schema) const;
};

/// True iff `instance` satisfies `fd`. If `violation` is non-null and the FD
/// is violated, a human-readable description of one violation is stored.
bool SatisfiesFd(const Instance& instance, const FunctionalDependency& fd,
                 std::string* violation);

/// True iff `instance` satisfies `id`; see SatisfiesFd for `violation`.
bool SatisfiesId(const Instance& instance, const InclusionDependency& id,
                 std::string* violation);

}  // namespace whynot::rel

#endif  // WHYNOT_RELATIONAL_CONSTRAINTS_H_
