#include "whynot/relational/schema.h"

#include <algorithm>
#include <map>
#include <set>

#include "whynot/common/strings.h"

namespace whynot::rel {

int RelationDef::AttrIndex(const std::string& attr) const {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i] == attr) return static_cast<int>(i);
  }
  return -1;
}

std::string RelationDef::ToString() const {
  return name_ + "(" + Join(attrs_, ", ") + ")";
}

Status Schema::AddRelation(const std::string& name,
                           const std::vector<std::string>& attrs) {
  if (attrs.empty()) {
    return Status::InvalidArgument("relation '" + name + "' has arity 0");
  }
  if (index_.count(name) > 0) {
    return Status::InvalidArgument("duplicate relation '" + name + "'");
  }
  index_[name] = relations_.size();
  relations_.emplace_back(name, attrs, /*is_view=*/false);
  return Status::OK();
}

Status Schema::AddView(const std::string& name,
                       const std::vector<std::string>& attrs,
                       UnionQuery definition) {
  if (attrs.empty()) {
    return Status::InvalidArgument("view '" + name + "' has arity 0");
  }
  if (index_.count(name) > 0) {
    return Status::InvalidArgument("duplicate relation '" + name + "'");
  }
  if (definition.disjuncts.empty()) {
    return Status::InvalidArgument("view '" + name + "' has no disjuncts");
  }
  for (const ConjunctiveQuery& cq : definition.disjuncts) {
    if (cq.head.size() != attrs.size()) {
      return Status::InvalidArgument(
          "view '" + name + "' disjunct head arity mismatch");
    }
  }
  index_[name] = relations_.size();
  relations_.emplace_back(name, attrs, /*is_view=*/true);
  view_index_[name] = views_.size();
  views_.push_back(ViewDef{name, std::move(definition)});
  return Status::OK();
}

Status Schema::AddFd(FunctionalDependency fd) {
  WHYNOT_RETURN_IF_ERROR(fd.Validate(*this));
  fds_.push_back(std::move(fd));
  return Status::OK();
}

Status Schema::AddId(InclusionDependency id) {
  WHYNOT_RETURN_IF_ERROR(id.Validate(*this));
  ids_.push_back(std::move(id));
  return Status::OK();
}

const RelationDef* Schema::Find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? nullptr : &relations_[it->second];
}

const RelationDef& Schema::Get(const std::string& name) const {
  const RelationDef* def = Find(name);
  return *def;
}

const ViewDef* Schema::FindView(const std::string& name) const {
  auto it = view_index_.find(name);
  return it == view_index_.end() ? nullptr : &views_[it->second];
}

std::vector<std::pair<std::string, std::string>> Schema::ViewDependencies()
    const {
  std::vector<std::pair<std::string, std::string>> edges;
  for (const ViewDef& v : views_) {
    std::set<std::string> deps;
    for (const ConjunctiveQuery& cq : v.definition.disjuncts) {
      for (const Atom& atom : cq.atoms) {
        const RelationDef* def = Find(atom.relation);
        if (def != nullptr && def->is_view()) deps.insert(atom.relation);
      }
    }
    for (const std::string& d : deps) edges.emplace_back(v.name, d);
  }
  return edges;
}

Status Schema::CheckViewsAcyclic() const {
  // Kahn-style cycle detection over the "depends on" graph.
  std::map<std::string, std::set<std::string>> adj;
  std::map<std::string, int> indegree;
  for (const ViewDef& v : views_) {
    adj[v.name];
    indegree[v.name];
  }
  for (const auto& [from, to] : ViewDependencies()) {
    if (adj[from].insert(to).second) indegree[to]++;
  }
  std::vector<std::string> queue;
  for (const auto& [name, deg] : indegree) {
    if (deg == 0) queue.push_back(name);
  }
  size_t removed = 0;
  while (!queue.empty()) {
    std::string n = queue.back();
    queue.pop_back();
    ++removed;
    for (const std::string& m : adj[n]) {
      if (--indegree[m] == 0) queue.push_back(m);
    }
  }
  if (removed != adj.size()) {
    return Status::InvalidArgument(
        "view definitions are cyclic; nested UCQ-view definitions require "
        "an acyclic 'depends on' relation");
  }
  return Status::OK();
}

bool Schema::ViewsAreLinear() const {
  for (const ViewDef& v : views_) {
    for (const ConjunctiveQuery& cq : v.definition.disjuncts) {
      int view_atoms = 0;
      for (const Atom& atom : cq.atoms) {
        const RelationDef* def = Find(atom.relation);
        if (def != nullptr && def->is_view()) ++view_atoms;
      }
      if (view_atoms > 1) return false;
    }
  }
  return true;
}

bool Schema::ViewsAreFlat() const { return ViewDependencies().empty(); }

Status Schema::Validate() const {
  for (const FunctionalDependency& fd : fds_) {
    WHYNOT_RETURN_IF_ERROR(fd.Validate(*this));
  }
  for (const InclusionDependency& id : ids_) {
    WHYNOT_RETURN_IF_ERROR(id.Validate(*this));
  }
  for (const ViewDef& v : views_) {
    WHYNOT_RETURN_IF_ERROR(v.definition.Validate(*this));
  }
  return CheckViewsAcyclic();
}

std::string Schema::ToString() const {
  std::string out;
  out += "Data schema:\n";
  for (const RelationDef& r : relations_) {
    if (!r.is_view()) out += "  " + r.ToString() + "\n";
  }
  if (!views_.empty()) {
    out += "View schema:\n";
    for (const RelationDef& r : relations_) {
      if (r.is_view()) out += "  " + r.ToString() + "\n";
    }
    out += "View definitions:\n";
    for (const ViewDef& v : views_) {
      out += "  " + v.name + " <-> " + v.definition.ToString() + "\n";
    }
  }
  if (!fds_.empty()) {
    out += "Functional dependencies:\n";
    for (const FunctionalDependency& fd : fds_) {
      out += "  " + fd.ToString(*this) + "\n";
    }
  }
  if (!ids_.empty()) {
    out += "Inclusion dependencies:\n";
    for (const InclusionDependency& id : ids_) {
      out += "  " + id.ToString(*this) + "\n";
    }
  }
  return out;
}

}  // namespace whynot::rel
