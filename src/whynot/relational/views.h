#ifndef WHYNOT_RELATIONAL_VIEWS_H_
#define WHYNOT_RELATIONAL_VIEWS_H_

#include <string>
#include <vector>

#include "whynot/common/status.h"
#include "whynot/relational/instance.h"
#include "whynot/relational/schema.h"

namespace whynot::rel {

/// Computes the extensions of all view relations of `instance`'s schema
/// from its data relations, in a topological order of the "depends on"
/// relation (nested UCQ-view definitions correspond to non-recursive
/// Datalog, Section 2; evaluation is the usual stratum-by-stratum
/// materialization). Existing view tuples are discarded first.
Status MaterializeViews(Instance* instance);

/// View names in a topological order such that every view comes after the
/// views it depends on. Fails if the dependency relation is cyclic.
Result<std::vector<std::string>> ViewTopologicalOrder(const Schema& schema);

/// Expands every view atom in `query` using the view definitions, yielding
/// an equivalent union of conjunctive queries over data relations only.
/// Fresh variables are introduced for existential variables of the view
/// bodies. The expansion is exponential in the nesting depth in general
/// (this is exactly the CONEXPTIME source in Table 1); `max_disjuncts`
/// and `max_atoms` guard the blowup.
Result<UnionQuery> ExpandViews(const UnionQuery& query, const Schema& schema,
                               size_t max_disjuncts = 100000,
                               size_t max_atoms = 100000);

/// Expands a single CQ; see ExpandViews.
Result<UnionQuery> ExpandViews(const ConjunctiveQuery& query,
                               const Schema& schema,
                               size_t max_disjuncts = 100000,
                               size_t max_atoms = 100000);

}  // namespace whynot::rel

#endif  // WHYNOT_RELATIONAL_VIEWS_H_
