#include "whynot/relational/interval.h"

#include <cmath>
#include <limits>

namespace whynot::rel {

void IntervalConstraint::Narrow(CmpOp op, const Value& c) {
  if (empty) return;
  switch (op) {
    case CmpOp::kEq:
      if (eq.has_value() && !(*eq == c)) empty = true;
      eq = c;
      break;
    case CmpOp::kLt:
    case CmpOp::kLe: {
      bool strict = op == CmpOp::kLt;
      if (!hi.has_value() || c < *hi || (c == *hi && strict && !hi_strict)) {
        hi = c;
        hi_strict = strict;
      }
      break;
    }
    case CmpOp::kGt:
    case CmpOp::kGe: {
      bool strict = op == CmpOp::kGt;
      if (!lo.has_value() || *lo < c || (c == *lo && strict && !lo_strict)) {
        lo = c;
        lo_strict = strict;
      }
      break;
    }
  }
  Normalize();
}

void IntervalConstraint::Normalize() {
  if (empty) return;
  if (eq.has_value()) {
    if (lo.has_value() &&
        !EvalCmp(*eq, lo_strict ? CmpOp::kGt : CmpOp::kGe, *lo)) {
      empty = true;
    }
    if (hi.has_value() &&
        !EvalCmp(*eq, hi_strict ? CmpOp::kLt : CmpOp::kLe, *hi)) {
      empty = true;
    }
    return;
  }
  if (lo.has_value() && hi.has_value()) {
    if (*hi < *lo) {
      empty = true;
    } else if (*lo == *hi) {
      if (lo_strict || hi_strict) {
        empty = true;
      } else {
        eq = *lo;
      }
    }
  }
}

void IntervalConstraint::Merge(const IntervalConstraint& o) {
  if (o.eq.has_value()) Narrow(CmpOp::kEq, *o.eq);
  if (o.lo.has_value()) Narrow(o.lo_strict ? CmpOp::kGt : CmpOp::kGe, *o.lo);
  if (o.hi.has_value()) Narrow(o.hi_strict ? CmpOp::kLt : CmpOp::kLe, *o.hi);
  if (o.empty) empty = true;
}

bool IntervalConstraint::Entails(CmpOp op, const Value& c) const {
  if (empty) return true;
  if (eq.has_value()) return EvalCmp(*eq, op, c);
  switch (op) {
    case CmpOp::kEq:
      return false;  // a non-point interval never entails equality
    case CmpOp::kLt:
      return hi.has_value() && (*hi < c || (*hi == c && hi_strict));
    case CmpOp::kLe:
      return hi.has_value() && (*hi < c || *hi == c);
    case CmpOp::kGt:
      return lo.has_value() && (c < *lo || (*lo == c && lo_strict));
    case CmpOp::kGe:
      return lo.has_value() && (c < *lo || *lo == c);
  }
  return false;
}

bool IntervalConstraint::Admits(const Value& v) const {
  if (empty) return false;
  if (eq.has_value()) return *eq == v;
  if (lo.has_value() &&
      !EvalCmp(v, lo_strict ? CmpOp::kGt : CmpOp::kGe, *lo)) {
    return false;
  }
  if (hi.has_value() &&
      !EvalCmp(v, hi_strict ? CmpOp::kLt : CmpOp::kLe, *hi)) {
    return false;
  }
  return true;
}

namespace {

// The k-th candidate inside the open/closed interval, spreading candidates
// so that successive k yield distinct values where the order is dense.
std::optional<Value> CandidateAt(const IntervalConstraint& in, int k) {
  if (in.eq.has_value()) return k == 0 ? in.eq : std::nullopt;
  const bool has_lo = in.lo.has_value();
  const bool has_hi = in.hi.has_value();
  if (!has_lo && !has_hi) {
    // Completely free: fresh strings never collide with realistic data.
    return Value("~w" + std::to_string(k));
  }
  if (has_lo && !has_hi) {
    if (in.lo->is_number()) {
      return Value(in.lo->AsNumber() + 1.0 + static_cast<double>(k));
    }
    // Strings are unbounded above by suffix extension.
    return Value(in.lo->AsString() + "~" + std::to_string(k));
  }
  if (!has_lo && has_hi) {
    if (in.hi->is_number()) {
      return Value(in.hi->AsNumber() - 1.0 - static_cast<double>(k));
    }
    // Every number sorts below every string.
    return Value(static_cast<double>(-k));
  }
  // Bounded on both sides.
  if (in.lo->is_number() && in.hi->is_number()) {
    double lo = in.lo->AsNumber();
    double hi = in.hi->AsNumber();
    double t = (static_cast<double>(k) + 1.0) / (static_cast<double>(k) + 2.0);
    double mid = lo + (hi - lo) * (1.0 - t / 2.0);  // walks toward lo
    if (mid <= lo || mid >= hi) {
      // Degenerate float spacing: only the closed endpoints remain.
      if (!in.lo_strict && k == 0) return *in.lo;
      if (!in.hi_strict && k == 1) return *in.hi;
      return std::nullopt;
    }
    return Value(mid);
  }
  if (in.lo->is_number() && in.hi->is_string()) {
    // Numbers above lo are all below the string bound.
    return Value(in.lo->AsNumber() + 1.0 + static_cast<double>(k));
  }
  if (in.lo->is_string() && in.hi->is_string()) {
    // lo + "\x01...\x01" is strictly above lo; check against hi explicitly
    // (byte strings are not dense around "\0"-padded neighbours).
    std::string cand = in.lo->AsString() + std::string(1, '\x01');
    for (int i = 0; i < k; ++i) cand += '\x01';
    Value v(cand);
    if (in.Admits(v)) return v;
    return std::nullopt;
  }
  // lo string, hi number: empty under the number < string order; Normalize
  // marks these empty already.
  return std::nullopt;
}

}  // namespace

std::optional<Value> PickWitness(const IntervalConstraint& interval,
                                 const std::set<Value>& used, int attempts) {
  if (interval.empty) return std::nullopt;
  for (int k = 0; k < attempts; ++k) {
    std::optional<Value> cand = CandidateAt(interval, k);
    if (!cand.has_value()) {
      // Candidate generation ran dry; closed endpoints are the last resort.
      break;
    }
    if (!interval.Admits(*cand)) continue;
    if (used.count(*cand) == 0) return cand;
  }
  if (interval.lo.has_value() && !interval.lo_strict &&
      interval.Admits(*interval.lo) && used.count(*interval.lo) == 0) {
    return interval.lo;
  }
  if (interval.hi.has_value() && !interval.hi_strict &&
      interval.Admits(*interval.hi) && used.count(*interval.hi) == 0) {
    return interval.hi;
  }
  return std::nullopt;
}

RankRange FullRankRange(const ValuePool& pool) {
  return RankRange{0, pool.size()};
}

RankRange ResolveCmpRange(const ValuePool& pool, CmpOp op, const Value& c) {
  switch (op) {
    case CmpOp::kEq:
      return RankRange{pool.LowerBoundRank(c), pool.UpperBoundRank(c)};
    case CmpOp::kLt:
      return RankRange{0, pool.LowerBoundRank(c)};
    case CmpOp::kLe:
      return RankRange{0, pool.UpperBoundRank(c)};
    case CmpOp::kGt:
      return RankRange{pool.UpperBoundRank(c), pool.size()};
    case CmpOp::kGe:
      return RankRange{pool.LowerBoundRank(c), pool.size()};
  }
  return RankRange{0, 0};
}

}  // namespace whynot::rel
