// Quickstart: the running example of the paper (Example 3.4 / Figure 3).
//
// A travel database holds cities and train connections. The query asks for
// all pairs of cities connected via one intermediate city. The user asks:
// why is (Amsterdam, New York) not among the answers? Using the external
// ontology of Figure 3, the library derives the most-general explanation
// (European-City, US-City): "Amsterdam is a European city, New York is a US
// city, and no European city is connected to any US city via one stop."

#include <cstdio>

#include "whynot/whynot.h"

namespace wn = whynot;

int main() {
  // 1. Schema and instance (Figures 1 and 2, data part only).
  wn::Result<wn::rel::Schema> schema = wn::workload::CitiesDataSchema();
  if (!schema.ok()) {
    std::fprintf(stderr, "schema: %s\n", schema.status().ToString().c_str());
    return 1;
  }
  wn::Result<wn::rel::Instance> instance =
      wn::workload::CitiesInstance(&schema.value());
  if (!instance.ok()) {
    std::fprintf(stderr, "instance: %s\n",
                 instance.status().ToString().c_str());
    return 1;
  }
  std::printf("Instance:\n%s\n", instance->ToString().c_str());

  // 2. The query q(x, y) = ∃z. TC(x, z) ∧ TC(z, y) and its answers.
  wn::rel::UnionQuery query = wn::workload::ConnectedViaQuery();
  std::printf("Query: %s\n", query.ToString().c_str());

  // 3. The why-not question: why is (Amsterdam, New York) missing?
  wn::Result<wn::explain::WhyNotInstance> wni =
      wn::explain::MakeWhyNotInstance(&instance.value(), query,
                                      {"Amsterdam", "New York"});
  if (!wni.ok()) {
    std::fprintf(stderr, "why-not: %s\n", wni.status().ToString().c_str());
    return 1;
  }
  std::printf("\nq(I):\n");
  for (const wn::Tuple& t : wni->answers) {
    std::printf("  %s\n", wn::TupleToString(t).c_str());
  }
  std::printf("\n%s\n", wni->ToString().c_str());

  // 4. The external ontology of Figure 3.
  auto ontology = wn::workload::CitiesOntology();
  if (!ontology.ok()) {
    std::fprintf(stderr, "ontology: %s\n",
                 ontology.status().ToString().c_str());
    return 1;
  }
  std::printf("\nOntology subsumptions (Hasse diagram):\n%s",
              (*ontology)->SubsumptionToString().c_str());

  // 5. Bind a prepared ExplainSession: one warm-up (query evaluation,
  // extension tables, answer covers) serves any number of why-not
  // questions over this data — the serving shape of a production
  // deployment. Results are bit-identical to the one-shot entry points.
  wn::Result<wn::explain::ExplainSession> session =
      wn::explain::ExplainSession::Bind(&instance.value(), query,
                                        ontology->get());
  if (!session.ok()) {
    std::fprintf(stderr, "session: %s\n",
                 session.status().ToString().c_str());
    return 1;
  }
  wn::Status consistent = session->CheckConsistent();
  std::printf("\nInstance consistent with ontology: %s\n",
              consistent.ToString().c_str());

  // All most-general explanations (Algorithm 1, EXHAUSTIVE SEARCH).
  wn::Result<std::vector<wn::explain::Explanation>> mges =
      session->ExhaustiveMges({"Amsterdam", "New York"});
  if (!mges.ok()) {
    std::fprintf(stderr, "search: %s\n", mges.status().ToString().c_str());
    return 1;
  }
  wn::onto::BoundOntology& bound = *session->bound_ontology();
  std::printf("\nMost-general explanations:\n");
  for (const wn::explain::Explanation& e : mges.value()) {
    std::printf("  %s\n", wn::explain::ExplanationToString(bound, e).c_str());
  }
  std::printf(
      "\nReading (European-City, US-City): Amsterdam is a European city,\n"
      "New York is a US city, and no European city reaches any US city via\n"
      "one intermediate stop — the paper's explanation E4. The second MGE,\n"
      "(City, East-Coast-City), is also a valid Definition 3.2 explanation:\n"
      "no city at all reaches an East-Coast city in the data.\n");

  // 6. The warm session answers further questions without re-deriving
  // any shared state.
  wn::Result<std::vector<wn::explain::Explanation>> second =
      session->ExhaustiveMges({"Berlin", "San Francisco"});
  if (second.ok()) {
    std::printf("\nSecond request, same session — why not (Berlin, San "
                "Francisco)?\n");
    for (const wn::explain::Explanation& e : second.value()) {
      std::printf("  %s\n",
                  wn::explain::ExplanationToString(bound, e).c_str());
    }
  }
  return 0;
}
