// OBDA-induced ontology (Section 4.1, Figure 4, Example 4.5): a DL-LiteR
// TBox plus GAV mapping assertions induce an S-ontology O_B; the why-not
// question of Example 3.4 is answered against it, yielding the paper's
// most-general explanation E1 = (EU-City, N.A.-City).

#include <cstdio>

#include "whynot/whynot.h"

namespace wn = whynot;

int main() {
  wn::Result<wn::rel::Schema> schema = wn::workload::CitiesDataSchema();
  wn::Result<wn::rel::Instance> instance =
      wn::workload::CitiesInstance(&schema.value());
  if (!instance.ok()) {
    std::fprintf(stderr, "%s\n", instance.status().ToString().c_str());
    return 1;
  }

  // The OBDA specification B = (T, S, M) of Figure 4.
  wn::dl::TBox tbox = wn::workload::CitiesTBox();
  std::printf("TBox:\n%s\n", tbox.ToString().c_str());
  std::vector<wn::obda::GavMapping> mappings = wn::workload::CitiesMappings();
  std::printf("Mappings:\n");
  for (const wn::obda::GavMapping& m : mappings) {
    std::printf("  %s\n", m.ToString().c_str());
  }
  wn::obda::ObdaSpec spec(std::move(tbox), &schema.value(),
                          std::move(mappings));
  wn::Status valid = spec.Validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "%s\n", valid.ToString().c_str());
    return 1;
  }
  wn::Status consistent = spec.CheckConsistent(instance.value());
  std::printf("\nInstance consistent with the OBDA specification: %s\n",
              consistent.ToString().c_str());

  // The induced S-ontology O_B (Definition 4.4, computed in PTIME by
  // Theorem 4.2). Show a few certain extensions, as in Example 4.5.
  wn::obda::ObdaInducedOntology ontology(&spec);
  wn::onto::BoundOntology bound(&ontology, &instance.value());
  std::printf("\nInduced concepts and certain extensions ext_OB(C, I):\n");
  for (wn::onto::ConceptId c = 0; c < ontology.NumConcepts(); ++c) {
    std::printf("  %-22s %s\n", ontology.ConceptName(c).c_str(),
                bound.Ext(c).ToString(bound.pool()).c_str());
  }

  // The why-not question of Example 3.4 against O_B.
  wn::Result<wn::explain::WhyNotInstance> wni =
      wn::explain::MakeWhyNotInstance(&instance.value(),
                                      wn::workload::ConnectedViaQuery(),
                                      {"Amsterdam", "New York"});
  if (!wni.ok()) {
    std::fprintf(stderr, "%s\n", wni.status().ToString().c_str());
    return 1;
  }

  wn::Result<std::vector<wn::explain::Explanation>> mges =
      wn::explain::ExhaustiveSearchAllMge(&bound, wni.value());
  if (!mges.ok()) {
    std::fprintf(stderr, "%s\n", mges.status().ToString().c_str());
    return 1;
  }
  std::printf("\nMost-general explanations for why-not (Amsterdam, New York):\n");
  for (const wn::explain::Explanation& e : mges.value()) {
    std::printf("  %s\n",
                wn::explain::ExplanationToString(bound, e).c_str());
    wn::Result<bool> check =
        wn::explain::CheckMgeExternal(&bound, wni.value(), e);
    std::printf("    CHECK-MGE: %s\n",
                check.ok() ? (check.value() ? "confirmed" : "NOT an MGE!?")
                           : check.status().ToString().c_str());
  }
  std::printf(
      "\nThe paper's Example 4.5 explanation E1 = (EU-City, N.A.-City) is\n"
      "the most general of its E1-E4 family; the mappings ground both\n"
      "concepts in the Cities table, and the TBox supplies EU-City ⊑ City,\n"
      "US-City ⊑ N.A.-City, and the disjointness EU-City ⊑ ¬N.A.-City.\n");
  return 0;
}
