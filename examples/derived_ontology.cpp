// Ontologies derived from a schema or instance (Section 4.2, Figure 5,
// Example 4.9): when no external ontology is available, concepts are built
// in the language LS from the schema itself. This example
//
//  1. prints the Figure 5 concepts in both algebra and SQL form,
//  2. verifies the Example 4.9 subsumptions (⊑_S via the best-effort
//     combined engine, since Figure 1 mixes views, an FD, and IDs; ⊑_I
//     exactly),
//  3. runs Algorithm 2 (INCREMENTAL SEARCH, with and without selections)
//     on why-not (Amsterdam, New York) w.r.t. the derived ontology OI,
//  4. shortens the result to an irredundant explanation (Proposition 6.2).

#include <cstdio>

#include "whynot/whynot.h"

namespace wn = whynot;
namespace ls = whynot::ls;

int main() {
  wn::Result<wn::rel::Schema> schema = wn::workload::CitiesSchema();
  wn::Result<wn::rel::Instance> instance =
      wn::workload::CitiesInstance(&schema.value());
  if (!instance.ok()) {
    std::fprintf(stderr, "%s\n", instance.status().ToString().c_str());
    return 1;
  }
  std::printf("Schema (Figure 1):\n%s\n", schema->ToString().c_str());

  // --- Figure 5: concepts of LS, algebra + SQL renderings. ---------------
  const char* figure5[] = {
      "pi[name](Cities)",
      "pi[name](sigma[continent = Europe](Cities))",
      "pi[name](sigma[continent = 'N.America'](Cities))",
      "pi[name](sigma[population > 1000000](Cities))",
      "pi[name](BigCity)",
      "{'Santa Cruz'}",
      "pi[name](sigma[population < 1000000](Cities)) & "
      "pi[city_to](sigma[city_from = Amsterdam](Reachable))",
  };
  std::printf("Figure 5 concepts:\n");
  for (const char* text : figure5) {
    wn::Result<ls::LsConcept> c = ls::ParseConcept(text, schema.value());
    if (!c.ok()) {
      std::fprintf(stderr, "parse '%s': %s\n", text,
                   c.status().ToString().c_str());
      return 1;
    }
    ls::Extension ext = ls::Eval(c.value(), instance.value());
    std::printf("  %s\n    SQL: %s\n    ext: %s\n",
                c->ToString(&schema.value()).c_str(),
                c->ToSql(schema.value()).c_str(), ext.ToString().c_str());
  }

  // --- Example 4.9 subsumptions. ------------------------------------------
  struct Pair {
    const char* sub;
    const char* super;
  };
  const Pair schema_subs[] = {
      {"pi[name](sigma[continent = Europe](Cities))", "pi[name](Cities)"},
      {"pi[name](sigma[population > 7000000](Cities))", "pi[name](BigCity)"},
      {"pi[name](BigCity)", "pi[name](Cities)"},
      {"pi[name](BigCity)", "pi[city_from](Train-Connections)"},
  };
  std::printf("\nSchema-level subsumptions (Example 4.9, best-effort "
              "combined engine):\n");
  for (const Pair& p : schema_subs) {
    wn::Result<ls::LsConcept> c1 = ls::ParseConcept(p.sub, schema.value());
    wn::Result<ls::LsConcept> c2 = ls::ParseConcept(p.super, schema.value());
    ls::Verdict v =
        ls::SubsumedSBestEffort(c1.value(), c2.value(), schema.value());
    std::printf("  %s  ⊑S  %s : %s\n", p.sub, p.super, ls::VerdictName(v));
  }
  {
    // Holds w.r.t. O_I but not w.r.t. O_S (Example 4.9).
    wn::Result<ls::LsConcept> c1 = ls::ParseConcept(
        "pi[city_to](sigma[city_from = Amsterdam](Reachable))",
        schema.value());
    wn::Result<ls::LsConcept> c2 = ls::ParseConcept(
        "pi[city_to](sigma[city_from = Berlin](Reachable))", schema.value());
    std::printf("  reachable-from-Amsterdam ⊑I reachable-from-Berlin : %s\n",
                ls::SubsumedI(c1.value(), c2.value(), instance.value())
                    ? "yes"
                    : "no");
    std::printf("  reachable-from-Amsterdam ⊑S reachable-from-Berlin : %s\n",
                ls::VerdictName(ls::SubsumedSBestEffort(
                    c1.value(), c2.value(), schema.value())));
  }

  // --- Algorithm 2 on why-not (Amsterdam, New York) w.r.t. OI. -----------
  wn::Result<wn::explain::WhyNotInstance> wni =
      wn::explain::MakeWhyNotInstance(&instance.value(),
                                      wn::workload::ConnectedViaQuery(),
                                      {"Amsterdam", "New York"});
  if (!wni.ok()) {
    std::fprintf(stderr, "%s\n", wni.status().ToString().c_str());
    return 1;
  }

  wn::explain::IncrementalOptions options;
  options.with_selections = false;
  wn::Result<wn::explain::LsExplanation> mge =
      wn::explain::IncrementalSearch(wni.value(), options);
  if (!mge.ok()) {
    std::fprintf(stderr, "%s\n", mge.status().ToString().c_str());
    return 1;
  }
  std::printf("\nIncremental search (selection-free, Theorem 5.3):\n  %s\n",
              wn::explain::LsExplanationToString(schema.value(), mge.value()).c_str());
  wn::explain::LsExplanation shortened =
      wn::explain::MakeIrredundant(mge.value(), instance.value());
  std::printf("Irredundant form (Proposition 6.2):\n  %s\n",
              wn::explain::LsExplanationToString(schema.value(), shortened).c_str());

  options.with_selections = true;
  wn::Result<wn::explain::LsExplanation> mge_sel =
      wn::explain::IncrementalSearch(wni.value(), options);
  if (!mge_sel.ok()) {
    std::fprintf(stderr, "%s\n", mge_sel.status().ToString().c_str());
    return 1;
  }
  shortened = wn::explain::MakeIrredundant(mge_sel.value(), instance.value());
  std::printf(
      "\nIncremental search WITH selections (Theorem 5.4), irredundant:\n"
      "  %s\n",
      wn::explain::LsExplanationToString(schema.value(), shortened).c_str());

  {
    ls::LubContext ctx(&instance.value());
    wn::Result<bool> is_mge = wn::explain::CheckMgeDerived(
        wni.value(), mge.value(), /*with_selections=*/false, &ctx);
    std::printf("\nCHECK-MGE w.r.t. OI (selection-free): %s\n",
                is_mge.ok() ? (is_mge.value() ? "confirmed" : "NOT most "
                                                              "general")
                            : is_mge.status().ToString().c_str());
  }

  // The paper's E2 = (cities-in-Europe, cities-in-N.America). It is an
  // explanation, and it cannot be generalized to ⊤ on either side. Against
  // the *full* language LS over OI, however, CHECK-MGE finds a strictly
  // more general refinement: the canonical box
  //   pi[name](sigma[name ∈ [Kyoto..Santa Cruz], country ∈ [Japan..USA]])
  // has extension {Kyoto, New York, San Francisco, Santa Cruz} ⊋
  // ext(N.America-cities) and the tuple stays an explanation. The paper's
  // "E2 is most general" claim is relative to its illustrated concept
  // family (and holds under ⊑_S, where such data-specific boxes are not
  // comparable); Definition 3.3 over OI is what the checker implements.
  {
    wn::Result<ls::LsConcept> e2a = ls::ParseConcept(
        "pi[name](sigma[continent = Europe](Cities))", schema.value());
    wn::Result<ls::LsConcept> e2b = ls::ParseConcept(
        "pi[name](sigma[continent = 'N.America'](Cities))", schema.value());
    wn::explain::LsExplanation e2 = {e2a.value(), e2b.value()};
    std::printf("\nPaper's E2 = %s\n",
                wn::explain::LsExplanationToString(schema.value(), e2).c_str());
    std::printf("  is an explanation: %s\n",
                wn::explain::IsLsExplanation(wni.value(), e2) ? "yes" : "no");
    ls::LubContext ctx(&instance.value());
    wn::Result<bool> is_mge = wn::explain::CheckMgeDerived(
        wni.value(), e2, /*with_selections=*/true, &ctx);
    std::printf("  CHECK-MGE w.r.t. OI over full LS: %s\n",
                is_mge.ok() ? (is_mge.value() ? "confirmed most general"
                                              : "not most general (a "
                                                "data-specific canonical box "
                                                "strictly generalizes it)")
                            : is_mge.status().ToString().c_str());
  }
  std::printf(
      "\nNote: Algorithm 2's own run reaches (⊤, ...) because adom(I) mixes\n"
      "strings and numbers — once a position's support set spans both, only\n"
      "⊤ covers it, and the tuple happens to stay an explanation. There may\n"
      "be several incomparable most-general explanations (Example 4.9).\n");
  return 0;
}
