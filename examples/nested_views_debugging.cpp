// Debugging nested view pipelines (the paper's motivation, Section 1, and
// its concluding example): complex analytics are specified as collections
// of nested views (LogiQL / non-recursive Datalog style). A curation bug
// silently drops every Springer publication; the user only sees that one
// particular publication X is missing from the final view. The derived
// ontology OI turns the tuple-level question "why is X missing?" into the
// high-level answer "every publication with publisher = Springer is
// missing" — pointing at the pipeline stage to inspect.

#include <cstdio>

#include "whynot/whynot.h"

namespace wn = whynot;
namespace rel = whynot::rel;

int main() {
  // Schema: RawPubs(id, publisher, year), Curated(id);
  // nested views: Recent(id)  <-> RawPubs(id, p, y) ∧ y >= 2000
  //               Indexed(id) <-> Recent(id) ∧ Curated(id).
  rel::Schema schema;
  wn::Status st = schema.AddRelation("RawPubs", {"id", "publisher", "year"});
  if (st.ok()) st = schema.AddRelation("Curated", {"id"});
  if (st.ok()) {
    rel::ConjunctiveQuery recent;
    recent.head = {"x"};
    rel::Atom raw;
    raw.relation = "RawPubs";
    raw.args = {rel::Term::Var("x"), rel::Term::Var("p"), rel::Term::Var("y")};
    recent.atoms = {raw};
    recent.comparisons = {{"y", rel::CmpOp::kGe, wn::Value(2000)}};
    rel::UnionQuery def;
    def.disjuncts.push_back(std::move(recent));
    st = schema.AddView("Recent", {"id"}, std::move(def));
  }
  if (st.ok()) {
    rel::ConjunctiveQuery indexed;
    indexed.head = {"x"};
    rel::Atom recent_atom;
    recent_atom.relation = "Recent";
    recent_atom.args = {rel::Term::Var("x")};
    rel::Atom curated;
    curated.relation = "Curated";
    curated.args = {rel::Term::Var("x")};
    indexed.atoms = {recent_atom, curated};
    rel::UnionQuery def;
    def.disjuncts.push_back(std::move(indexed));
    st = schema.AddView("Indexed", {"id"}, std::move(def));
  }
  if (st.ok()) st = schema.Validate();
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("Nested view pipeline (linearly nested UCQ views):\n%s\n",
              schema.ToString().c_str());

  // Data: 4 publications per publisher; the curation step (erroneously)
  // dropped every Springer id.
  rel::Instance instance(&schema);
  const char* publishers[] = {"ACM", "IEEE", "Springer"};
  for (const char* pub : publishers) {
    for (int i = 0; i < 4; ++i) {
      std::string id = std::string("pub-") + pub + "-" + std::to_string(i);
      int64_t year = 1995 + 7 * i;  // 1995, 2002, 2009, 2016
      st = instance.AddFact("RawPubs", {id, pub, year});
      if (!st.ok()) break;
      bool recent = year >= 2000;
      bool curation_bug = std::string(pub) == "Springer";
      if (recent && !curation_bug) {
        st = instance.AddFact("Curated", {id});
        if (!st.ok()) break;
      }
    }
  }
  st = rel::MaterializeViews(&instance);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  // The final query: everything the index serves.
  rel::ConjunctiveQuery q;
  q.head = {"x"};
  rel::Atom indexed_atom;
  indexed_atom.relation = "Indexed";
  indexed_atom.args = {rel::Term::Var("x")};
  q.atoms = {indexed_atom};
  rel::UnionQuery query;
  query.disjuncts.push_back(std::move(q));

  wn::Result<wn::explain::WhyNotInstance> wni = wn::explain::MakeWhyNotInstance(
      &instance, query, {wn::Value("pub-Springer-2")});
  if (!wni.ok()) {
    std::fprintf(stderr, "%s\n", wni.status().ToString().c_str());
    return 1;
  }
  std::printf("Indexed publications (q(I)):\n");
  for (const wn::Tuple& t : wni->answers) {
    std::printf("  %s\n", wn::TupleToString(t).c_str());
  }
  std::printf("\n%s   (pub-Springer-2 appeared in 2009 — it should be "
              "indexed)\n\n",
              wni->ToString().c_str());

  // Most-general explanation w.r.t. the derived ontology OI, with
  // selections so publisher-level concepts are expressible.
  wn::explain::IncrementalOptions options;
  options.with_selections = true;
  wn::Result<wn::explain::LsExplanation> mge =
      wn::explain::IncrementalSearch(wni.value(), options);
  if (!mge.ok()) {
    std::fprintf(stderr, "%s\n", mge.status().ToString().c_str());
    return 1;
  }
  wn::explain::LsExplanation shortened =
      wn::explain::MakeIrredundant(mge.value(), instance);
  std::printf("Most-general explanation (Algorithm 2 + Proposition 6.2):\n"
              "  %s\n",
              wn::explain::LsExplanationToString(schema, shortened).c_str());
  std::printf(
      "\nReading: the missing publication is explained at the level of a\n"
      "whole concept — every Springer publication (equivalently: every\n"
      "uncurated recent publication) is absent from the index, which is\n"
      "precisely the curation bug. A tuple-level (data- or query-centric)\n"
      "explanation would only suggest inserting pub-Springer-2 itself.\n");
  return 0;
}
