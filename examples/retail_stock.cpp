// The retail scenario from the paper's introduction: a large retail
// company's database answers "which products does each store have in
// stock?" as (product, store) pairs. The user asks why (P0034, S012) —
// a bluetooth headset and a San Francisco store — is missing. The
// most-general explanation comes out as (Bluetooth-Headset,
// California-Store): "no store in California has any bluetooth headset in
// stock" — a high-level insight rather than a tuple-level repair.

#include <cstdio>

#include "whynot/whynot.h"

namespace wn = whynot;

int main() {
  wn::Result<wn::workload::RetailScenario> scenario =
      wn::workload::MakeRetailScenario();
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }
  wn::workload::RetailScenario& s = scenario.value();
  std::printf("Products: %zu, Stores: %zu, Stock rows: %zu\n",
              s.instance->Relation("Products").size(),
              s.instance->Relation("Stores").size(),
              s.instance->Relation("Stock").size());

  wn::Result<wn::explain::WhyNotInstance> wni =
      wn::explain::MakeWhyNotInstance(s.instance.get(), s.stock_query,
                                      s.missing);
  if (!wni.ok()) {
    std::fprintf(stderr, "%s\n", wni.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n\n", wni->ToString().c_str());

  wn::onto::BoundOntology bound(s.ontology.get(), s.instance.get());
  wn::Status consistent = bound.CheckConsistent();
  if (!consistent.ok()) {
    std::fprintf(stderr, "%s\n", consistent.ToString().c_str());
    return 1;
  }

  // Existence first (Theorem 5.1.2), then all MGEs (Algorithm 1).
  wn::explain::Explanation witness;
  wn::Result<bool> exists =
      wn::explain::ExistsExplanation(&bound, wni.value(), &witness);
  if (!exists.ok()) {
    std::fprintf(stderr, "%s\n", exists.status().ToString().c_str());
    return 1;
  }
  std::printf("Explanation exists: %s\n", exists.value() ? "yes" : "no");
  if (exists.value()) {
    std::printf("First witness: %s\n",
                wn::explain::ExplanationToString(bound, witness).c_str());
  }

  wn::Result<std::vector<wn::explain::Explanation>> mges =
      wn::explain::ExhaustiveSearchAllMge(&bound, wni.value());
  if (!mges.ok()) {
    std::fprintf(stderr, "%s\n", mges.status().ToString().c_str());
    return 1;
  }
  std::printf("\nMost-general explanations:\n");
  for (const wn::explain::Explanation& e : mges.value()) {
    std::printf("  %s  (degree %s)\n",
                wn::explain::ExplanationToString(bound, e).c_str(),
                wn::explain::DegreeOf(&bound, e).ToString().c_str());
  }

  // Cardinality-based preference (Section 6): the >card-maximal
  // explanation maximizes |ext(C1)| + |ext(C2)|.
  wn::Result<std::optional<wn::explain::CardinalityResult>> exact =
      wn::explain::ExactCardMaximal(&bound, wni.value());
  if (exact.ok() && exact->has_value()) {
    std::printf(
        "\n>card-maximal explanation (Section 6): %s with degree %s\n",
        wn::explain::ExplanationToString(bound, (*exact)->explanation)
            .c_str(),
        (*exact)->degree.ToString().c_str());
  }
  return 0;
}
