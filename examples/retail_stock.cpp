// The retail scenario from the paper's introduction: a large retail
// company's database answers "which products does each store have in
// stock?" as (product, store) pairs. The user asks why (P0034, S012) —
// a bluetooth headset and a San Francisco store — is missing. The
// most-general explanation comes out as (Bluetooth-Headset,
// California-Store): "no store in California has any bluetooth headset in
// stock" — a high-level insight rather than a tuple-level repair.

#include <cstdio>

#include "whynot/whynot.h"

namespace wn = whynot;

int main() {
  wn::Result<wn::workload::RetailScenario> scenario =
      wn::workload::MakeRetailScenario();
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }
  wn::workload::RetailScenario& s = scenario.value();
  std::printf("Products: %zu, Stores: %zu, Stock rows: %zu\n",
              s.instance->Relation("Products").size(),
              s.instance->Relation("Stores").size(),
              s.instance->Relation("Stock").size());

  // One prepared session serves the whole conversation about this data:
  // existence, all MGEs, and the cardinality preference reuse the same
  // warm extension tables and answer covers (bit-identical to the
  // one-shot entry points).
  wn::Result<wn::explain::ExplainSession> session =
      wn::explain::ExplainSession::Bind(s.instance.get(), s.stock_query,
                                        s.ontology.get());
  if (!session.ok()) {
    std::fprintf(stderr, "%s\n", session.status().ToString().c_str());
    return 1;
  }
  wn::Status consistent = session->CheckConsistent();
  if (!consistent.ok()) {
    std::fprintf(stderr, "%s\n", consistent.ToString().c_str());
    return 1;
  }
  std::printf("why-not %s? Ans has %zu tuples\n\n",
              wn::TupleToString(s.missing).c_str(),
              session->answers().size());
  wn::onto::BoundOntology& bound = *session->bound_ontology();

  // Existence first (Theorem 5.1.2), then all MGEs (Algorithm 1).
  wn::explain::Explanation witness;
  wn::Result<bool> exists = session->Exists(s.missing, &witness);
  if (!exists.ok()) {
    std::fprintf(stderr, "%s\n", exists.status().ToString().c_str());
    return 1;
  }
  std::printf("Explanation exists: %s\n", exists.value() ? "yes" : "no");
  if (exists.value()) {
    std::printf("First witness: %s\n",
                wn::explain::ExplanationToString(bound, witness).c_str());
  }

  wn::Result<std::vector<wn::explain::Explanation>> mges =
      session->ExhaustiveMges(s.missing);
  if (!mges.ok()) {
    std::fprintf(stderr, "%s\n", mges.status().ToString().c_str());
    return 1;
  }
  std::printf("\nMost-general explanations:\n");
  for (const wn::explain::Explanation& e : mges.value()) {
    std::printf("  %s  (degree %s)\n",
                wn::explain::ExplanationToString(bound, e).c_str(),
                wn::explain::DegreeOf(&bound, e).ToString().c_str());
  }

  // Cardinality-based preference (Section 6): the >card-maximal
  // explanation maximizes |ext(C1)| + |ext(C2)|.
  wn::Result<std::optional<wn::explain::CardinalityResult>> exact =
      session->CardMaximal(s.missing);
  if (exact.ok() && exact->has_value()) {
    std::printf(
        "\n>card-maximal explanation (Section 6): %s with degree %s\n",
        wn::explain::ExplanationToString(bound, (*exact)->explanation)
            .c_str(),
        (*exact)->degree.ToString().c_str());
  }
  return 0;
}
