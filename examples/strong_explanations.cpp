// Strong explanations and MGE enumeration (Sections 6 and 7).
//
// The paper's explanations are relative to one instance: the concept
// product merely avoids Ans = q(I). A *strong* explanation avoids q(I')
// on every instance I' of the schema — the reason is baked into the
// schema's constraints and the query, not the data at hand (Section 6).
// Section 7 additionally asks for an enumeration of *all* most-general
// explanations.
//
// This example drives both on a course-registration audit:
//
//  1. load a schema/instance from their text formats (whynot/text),
//  2. ask why a student-course pair is missing from the roster query,
//  3. enumerate all most-general explanations w.r.t. OI,
//  4. test each for strongness; for the non-strong ones print the
//     counterexample world, and show how an FD turns a data-level
//     explanation into a schema-level (strong) one.

#include <cstdio>

#include "whynot/text/parsers.h"
#include "whynot/whynot.h"

namespace wn = whynot;

namespace {

constexpr char kSchema[] = R"(
relation Students(name, year, program)
relation Courses(code, level, dept)
relation Enrolled(student, course)
fd Students: name -> year
fd Courses: code -> level
)";

constexpr char kFacts[] = R"(
Students(Ada, 1, CS)
Students(Grace, 4, CS)
Students(Edsger, 3, Math)
Courses(CS101, 100, CS)
Courses(CS450, 400, CS)
Courses(M300, 300, Math)
Enrolled(Ada, CS101)
Enrolled(Grace, CS450)
Enrolled(Grace, M300)
Enrolled(Edsger, M300)
)";

// Roster: who takes which 300+-level course.
constexpr char kQuery[] =
    "q(s, c) := Enrolled(s, c), Courses(c, l, d), l >= 300";

int Fail(const wn::Status& status) {
  std::fprintf(stderr, "%s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  // --- 1. Load the world from the text formats. --------------------------
  wn::Result<wn::rel::Schema> schema = wn::text::ParseSchema(kSchema);
  if (!schema.ok()) return Fail(schema.status());
  wn::rel::Instance instance(&schema.value());
  wn::Status st = wn::text::ParseFactsInto(kFacts, &instance);
  if (!st.ok()) return Fail(st);
  st = instance.SatisfiesConstraints();
  if (!st.ok()) return Fail(st);

  wn::Result<wn::rel::UnionQuery> query =
      wn::text::ParseQuery(kQuery, schema.value());
  if (!query.ok()) return Fail(query.status());

  // --- 2. The why-not question. ------------------------------------------
  // Ada is a first-year; why is (Ada, CS450) not on the advanced roster?
  wn::Result<wn::explain::WhyNotInstance> wni =
      wn::explain::MakeWhyNotInstance(&instance, query.value(),
                                      {"Ada", "CS450"});
  if (!wni.ok()) return Fail(wni.status());
  std::printf("query: %s\nanswers:\n", kQuery);
  for (const wn::Tuple& t : wni->answers) {
    std::printf("  %s\n", wn::TupleToString(t).c_str());
  }
  std::printf("why not (Ada, CS450)?\n\n");

  // --- 3. Enumerate ALL most-general explanations (Section 7). -----------
  wn::explain::EnumerateStats stats;
  wn::explain::EnumerateOptions enum_options;
  enum_options.with_selections = true;
  wn::Result<std::vector<wn::explain::LsExplanation>> mges =
      wn::explain::EnumerateAllMges(wni.value(), enum_options, &stats);
  if (!mges.ok()) return Fail(mges.status());
  std::printf("all most-general explanations w.r.t. OI (%zu; %zu nodes):\n",
              mges->size(), stats.nodes_expanded);
  for (const wn::explain::LsExplanation& e : mges.value()) {
    std::printf("  %s\n",
                wn::explain::LsExplanationToString(schema.value(), e).c_str());
  }

  // --- 4. Which of them are strong (Section 6)? ---------------------------
  std::printf("\nstrongness of each MGE:\n");
  for (const wn::explain::LsExplanation& e : mges.value()) {
    wn::Result<wn::explain::StrongDecision> d =
        wn::explain::DecideStrongExplanation(schema.value(), query.value(), e);
    if (!d.ok()) return Fail(d.status());
    std::printf("  %s -> %s\n",
                wn::explain::LsExplanationToString(schema.value(), e).c_str(),
                wn::explain::StrongVerdictName(d->verdict));
    if (d->verdict == wn::explain::StrongVerdict::kNotStrong) {
      std::printf("    counterexample world admits %s:\n%s",
                  wn::TupleToString(d->witness).c_str(),
                  d->counterexample->ToString().c_str());
    }
  }

  // --- 5. A hand-crafted strong explanation. ------------------------------
  // "CS450 is a 400-level course and Ada only takes courses below level
  // 300" is data-specific. But pinning the *course* via its FD-determined
  // level is schema-level: (⊤, π_code(σ_level<300(Courses))) can never
  // intersect the roster query, because Courses: code → level forces the
  // query's own Courses atom (l ≥ 300) to agree with the concept's
  // (level < 300) on the same code.
  wn::explain::LsExplanation strong_candidate = {
      wn::ls::LsConcept::Top(),
      wn::ls::LsConcept::Projection(
          "Courses", 0, {{1, wn::rel::CmpOp::kLt, wn::Value(300)}})};
  wn::Result<wn::explain::StrongDecision> d =
      wn::explain::DecideStrongExplanation(schema.value(), query.value(),
                                           strong_candidate);
  if (!d.ok()) return Fail(d.status());
  std::printf(
      "\nhand-crafted candidate %s:\n  verdict: %s\n  (the FD Courses: code "
      "-> level makes the level conflict schema-level)\n",
      wn::explain::LsExplanationToString(schema.value(), strong_candidate)
          .c_str(),
      wn::explain::StrongVerdictName(d->verdict));

  // Without the FD the same candidate is refutable: a course could list
  // two levels.
  wn::Result<wn::rel::Schema> no_fd = wn::text::ParseSchema(R"(
relation Students(name, year, program)
relation Courses(code, level, dept)
relation Enrolled(student, course)
)");
  if (!no_fd.ok()) return Fail(no_fd.status());
  wn::Result<wn::rel::UnionQuery> query2 =
      wn::text::ParseQuery(kQuery, no_fd.value());
  if (!query2.ok()) return Fail(query2.status());
  d = wn::explain::DecideStrongExplanation(no_fd.value(), query2.value(),
                                           strong_candidate);
  if (!d.ok()) return Fail(d.status());
  std::printf(
      "\nsame candidate without the FD:\n  verdict: %s — a world where one "
      "course code has two level rows refutes it:\n%s",
      wn::explain::StrongVerdictName(d->verdict),
      d->verdict == wn::explain::StrongVerdict::kNotStrong
          ? d->counterexample->ToString().c_str()
          : "");
  return 0;
}
