#!/usr/bin/env python3
"""Benchmark regression gate.

Reads a BENCH_PR<N>.json produced by tools/run_benchmarks.sh and fails
(exit 1) when any tracked benchmark's speedup_vs_baseline falls below the
floor (default 0.85x vs the parent tree). Since the v2 schema (PR 4)
speedup_vs_baseline is computed from the 1-thread row, so the gate always
checks the serial path — thread-level parallelism cannot mask a serial
regression. The pooled speedups (speedup_pooled_vs_baseline) are printed
for the scaling trajectory but not gated. Also prints the per-benchmark-
binary median speedup so the perf trajectory is visible in CI logs.

Usage: tools/check_bench.py [bench-json] [--floor 0.85]
"""

import argparse
import json
import statistics
import sys
from pathlib import Path


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", nargs="?",
                        default=str(Path(__file__).resolve().parent.parent /
                                    "BENCH_PR5.json"))
    parser.add_argument("--floor", type=float, default=0.85,
                        help="fail when any benchmark's speedup is below this")
    args = parser.parse_args()

    data = json.load(open(args.bench_json))
    speedups = data.get("speedup_vs_baseline", {})
    if not speedups:
        print(f"error: no speedup_vs_baseline in {args.bench_json}",
              file=sys.stderr)
        return 1

    # Group entries by the benchmark binary that produced them (the
    # 1-thread section when present — its names drive the gate).
    sections = data.get("benchmarks_1thread") or data.get("benchmarks", {})
    by_binary = {}
    for bench, payload in sections.items():
        for name in payload.get("results", {}):
            if name in speedups:
                by_binary.setdefault(bench, []).append(speedups[name])

    for bench in sorted(by_binary):
        med = statistics.median(by_binary[bench])
        print(f"{bench}: median speedup {med:.2f}x over "
              f"{len(by_binary[bench])} entries")
    overall = statistics.median(speedups.values())
    print(f"overall: median speedup {overall:.2f}x over "
          f"{len(speedups)} entries")
    pooled = data.get("speedup_pooled_vs_baseline", {})
    if pooled:
        pmed = statistics.median(pooled.values())
        threads = {p.get("context", {}).get("whynot_threads")
                   for p in data.get("benchmarks", {}).values()}
        print(f"pooled ({sorted(t for t in threads if t)} threads): median "
              f"speedup {pmed:.2f}x over {len(pooled)} entries [not gated]")

    regressed = {name: s for name, s in sorted(speedups.items())
                 if s < args.floor}
    if regressed:
        print(f"\nFAIL: {len(regressed)} benchmark(s) below "
              f"{args.floor:.2f}x:", file=sys.stderr)
        for name, s in regressed.items():
            print(f"  {name}: {s:.2f}x", file=sys.stderr)
        return 1
    print(f"OK: no tracked benchmark below {args.floor:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
