#!/usr/bin/env python3
"""Benchmark regression gate.

Reads a BENCH_PR<N>.json produced by tools/run_benchmarks.sh and fails
(exit 1) when any tracked benchmark's speedup_vs_baseline falls below the
floor (default 0.85x vs the parent tree). Since the v2 schema (PR 4)
speedup_vs_baseline is computed from the 1-thread row, so the gate always
checks the serial path — thread-level parallelism cannot mask a serial
regression. The pooled speedups (speedup_pooled_vs_baseline) are printed
for the scaling trajectory but not gated. Also prints the per-benchmark-
binary median speedup so the perf trajectory is visible in CI logs.

Since PR 6 the lattice-frontier benchmarks export pruning counters
(raw_product / prune_enumerated / prune_skipped / prune_downset_hits /
prune_waves). A pruning-effectiveness report is printed for every entry
carrying them, and entries whose raw candidate product exceeds 10^6 are
gated on skipping at least --prune-floor (default 0.9) of that product —
the deep-lattice scenarios only finish exactly because the dominance
pruning holds, so a collapse in effectiveness is a correctness-adjacent
regression, not just a slowdown.

Usage: tools/check_bench.py [bench-json] [--floor 0.85] [--prune-floor 0.9]
"""

import argparse
import json
import statistics
import sys
from pathlib import Path


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", nargs="?",
                        default=str(Path(__file__).resolve().parent.parent /
                                    "BENCH_PR6.json"))
    parser.add_argument("--floor", type=float, default=0.85,
                        help="fail when any benchmark's speedup is below this")
    parser.add_argument("--prune-floor", type=float, default=0.9,
                        help="fail when a >10^6-product lattice benchmark "
                             "skips less than this fraction of the product")
    args = parser.parse_args()

    data = json.load(open(args.bench_json))
    speedups = data.get("speedup_vs_baseline", {})
    if not speedups:
        print(f"error: no speedup_vs_baseline in {args.bench_json}",
              file=sys.stderr)
        return 1

    # Group entries by the benchmark binary that produced them (the
    # 1-thread section when present — its names drive the gate).
    sections = data.get("benchmarks_1thread") or data.get("benchmarks", {})
    by_binary = {}
    for bench, payload in sections.items():
        for name in payload.get("results", {}):
            if name in speedups:
                by_binary.setdefault(bench, []).append(speedups[name])

    for bench in sorted(by_binary):
        med = statistics.median(by_binary[bench])
        print(f"{bench}: median speedup {med:.2f}x over "
              f"{len(by_binary[bench])} entries")
    overall = statistics.median(speedups.values())
    print(f"overall: median speedup {overall:.2f}x over "
          f"{len(speedups)} entries")
    pooled = data.get("speedup_pooled_vs_baseline", {})
    if pooled:
        pmed = statistics.median(pooled.values())
        threads = {p.get("context", {}).get("whynot_threads")
                   for p in data.get("benchmarks", {}).values()}
        print(f"pooled ({sorted(t for t in threads if t)} threads): median "
              f"speedup {pmed:.2f}x over {len(pooled)} entries [not gated]")

    # Pruning-effectiveness report: every result exporting the PR-6
    # frontier counters, across both thread flavors (the stats are part of
    # the deterministic contract, so the flavors should agree).
    prune_fails = []
    seen_prune = set()
    for section in ("benchmarks_1thread", "benchmarks"):
        for bench, payload in data.get(section, {}).items():
            for name, r in sorted(payload.get("results", {}).items()):
                c = r.get("counters", {})
                if "prune_enumerated" not in c or name in seen_prune:
                    continue
                seen_prune.add(name)
                enumerated = c["prune_enumerated"]
                skipped = c.get("prune_skipped", 0)
                raw = c.get("raw_product", enumerated + skipped)
                total = enumerated + skipped
                ratio = skipped / total if total else 0.0
                print(f"pruning {name}: raw_product={raw:.3g} "
                      f"tested={enumerated:.0f} skipped={skipped:.3g} "
                      f"({ratio:.2%}), {c.get('prune_waves', 0):.0f} waves, "
                      f"{c.get('prune_downset_hits', 0):.0f} downset hits")
                if raw > 1e6 and ratio < args.prune_floor:
                    prune_fails.append((name, ratio))

    regressed = {name: s for name, s in sorted(speedups.items())
                 if s < args.floor}
    if regressed:
        print(f"\nFAIL: {len(regressed)} benchmark(s) below "
              f"{args.floor:.2f}x:", file=sys.stderr)
        for name, s in regressed.items():
            print(f"  {name}: {s:.2f}x", file=sys.stderr)
        return 1
    if prune_fails:
        print(f"\nFAIL: {len(prune_fails)} lattice benchmark(s) skipping "
              f"less than {args.prune_floor:.0%} of a >10^6 product:",
              file=sys.stderr)
        for name, ratio in prune_fails:
            print(f"  {name}: {ratio:.2%}", file=sys.stderr)
        return 1
    print(f"OK: no tracked benchmark below {args.floor:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
