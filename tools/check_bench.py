#!/usr/bin/env python3
"""Benchmark regression gate.

Reads a BENCH_PR<N>.json produced by tools/run_benchmarks.sh and fails
(exit 1) when any tracked benchmark's speedup_vs_baseline falls below the
floor (default 0.85x vs the parent tree). Since the v2 schema (PR 4)
speedup_vs_baseline is computed from the 1-thread row, so the gate always
checks the serial path — thread-level parallelism cannot mask a serial
regression. The pooled speedups (speedup_pooled_vs_baseline) are printed
for the scaling trajectory but not gated. Also prints the per-benchmark-
binary median speedup so the perf trajectory is visible in CI logs.

Since PR 6 the lattice-frontier benchmarks export pruning counters
(raw_product / prune_enumerated / prune_skipped / prune_downset_hits /
prune_waves). A pruning-effectiveness report is printed for every entry
carrying them, and entries whose raw candidate product exceeds 10^6 are
gated on skipping at least --prune-floor (default 0.9) of that product —
the deep-lattice scenarios only finish exactly because the dominance
pruning holds, so a collapse in effectiveness is a correctness-adjacent
regression, not just a slowdown.

Since PR 10 the shared concept-cache column: entries exporting the
cache traffic counters (cache_shared_hits / cache_local_hits /
cache_misses / cache_publishes, from the session-held concept cache's
cumulative stats) print a per-entry traffic report with the published-tier
hit share. Warm-session entries in the pooled section are gated on
reporting at least one shared hit: the whole point of the
publish-after-wave merge is that later requests and parallel workers read
entries previous waves published, so a zero there means the shared tier
went dark (e.g. a search stopped threading the session cache through) even
if timings look plausible.

Since PR 7 the memory column: entries exporting a memory_bytes counter
(bench_memory's container sweep and warm-session residency scenarios)
print their residency against the dense_memory_bytes counterfactual —
the force-dense byte count the hybrid containers replaced — and are
gated against the parent tree: when the baseline JSON carries the same
entry, current memory_bytes above --memory-ceiling (default 1.10x) times
the parent's fails, so a time win can never quietly buy back the memory.
Per-binary peak RSS (context.peak_rss_bytes) is reported alongside.

Usage: tools/check_bench.py [bench-json] [--floor 0.85] [--prune-floor 0.9]
                            [--memory-ceiling 1.10] [--baseline-json FILE]
"""

import argparse
import json
import statistics
import sys
from pathlib import Path


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", nargs="?",
                        default=str(Path(__file__).resolve().parent.parent /
                                    "BENCH_PR10.json"))
    parser.add_argument("--floor", type=float, default=0.85,
                        help="fail when any benchmark's speedup is below this")
    parser.add_argument("--prune-floor", type=float, default=0.9,
                        help="fail when a >10^6-product lattice benchmark "
                             "skips less than this fraction of the product")
    parser.add_argument("--memory-ceiling", type=float, default=1.10,
                        help="fail when an entry's memory_bytes exceeds this "
                             "multiple of the parent tree's")
    parser.add_argument("--baseline-json", default=None,
                        help="parent-tree BENCH json for the memory gate "
                             "(default: BENCH_PR<N-1>.json beside bench-json)")
    args = parser.parse_args()

    data = json.load(open(args.bench_json))
    speedups = data.get("speedup_vs_baseline", {})
    if not speedups:
        print(f"error: no speedup_vs_baseline in {args.bench_json}",
              file=sys.stderr)
        return 1

    # Group entries by the benchmark binary that produced them (the
    # 1-thread section when present — its names drive the gate).
    sections = data.get("benchmarks_1thread") or data.get("benchmarks", {})
    by_binary = {}
    for bench, payload in sections.items():
        for name in payload.get("results", {}):
            if name in speedups:
                by_binary.setdefault(bench, []).append(speedups[name])

    for bench in sorted(by_binary):
        med = statistics.median(by_binary[bench])
        print(f"{bench}: median speedup {med:.2f}x over "
              f"{len(by_binary[bench])} entries")
    overall = statistics.median(speedups.values())
    print(f"overall: median speedup {overall:.2f}x over "
          f"{len(speedups)} entries")
    pooled = data.get("speedup_pooled_vs_baseline", {})
    if pooled:
        pmed = statistics.median(pooled.values())
        threads = {p.get("context", {}).get("whynot_threads")
                   for p in data.get("benchmarks", {}).values()}
        print(f"pooled ({sorted(t for t in threads if t)} threads): median "
              f"speedup {pmed:.2f}x over {len(pooled)} entries [not gated]")

    # Pruning-effectiveness report: every result exporting the PR-6
    # frontier counters, across both thread flavors (the stats are part of
    # the deterministic contract, so the flavors should agree).
    prune_fails = []
    seen_prune = set()
    for section in ("benchmarks_1thread", "benchmarks"):
        for bench, payload in data.get(section, {}).items():
            for name, r in sorted(payload.get("results", {}).items()):
                c = r.get("counters", {})
                if "prune_enumerated" not in c or name in seen_prune:
                    continue
                seen_prune.add(name)
                enumerated = c["prune_enumerated"]
                skipped = c.get("prune_skipped", 0)
                raw = c.get("raw_product", enumerated + skipped)
                total = enumerated + skipped
                ratio = skipped / total if total else 0.0
                print(f"pruning {name}: raw_product={raw:.3g} "
                      f"tested={enumerated:.0f} skipped={skipped:.3g} "
                      f"({ratio:.2%}), {c.get('prune_waves', 0):.0f} waves, "
                      f"{c.get('prune_downset_hits', 0):.0f} downset hits")
                if raw > 1e6 and ratio < args.prune_floor:
                    prune_fails.append((name, ratio))

    # Shared concept-cache traffic: report every entry exporting the PR-10
    # counters; gate pooled warm-session entries on nonzero shared hits.
    cache_fails = []
    seen_cache = set()
    for section in ("benchmarks", "benchmarks_1thread"):
        for bench, payload in data.get(section, {}).items():
            threads = payload.get("context", {}).get("whynot_threads")
            for name, r in sorted(payload.get("results", {}).items()):
                c = r.get("counters", {})
                if "cache_shared_hits" not in c or name in seen_cache:
                    continue
                seen_cache.add(name)
                shared = c["cache_shared_hits"]
                local = c.get("cache_local_hits", 0)
                misses = c.get("cache_misses", 0)
                lookups = shared + local + misses
                share = shared / lookups if lookups else 0.0
                line = (f"cache {name}: shared={shared:.3g} local={local:.3g} "
                        f"misses={misses:.3g} ({share:.2%} published-tier)")
                if "cache_publishes" in c:
                    line += f", publishes={c['cache_publishes']:.3g}"
                if "cache_resident_bytes" in c:
                    line += f", resident {c['cache_resident_bytes'] / 1e3:.0f} kB"
                print(line)
                # Only session-backed scenarios promise reuse; one-shot
                # contrast rows legitimately report zero shared hits.
                if (section == "benchmarks" and "Session" in name
                        and shared <= 0):
                    cache_fails.append((name, threads))

    # Memory column: residency report plus the >ceiling-vs-parent gate.
    baseline_path = args.baseline_json
    if baseline_path is None:
        pr = data.get("pr")
        if isinstance(pr, int):
            baseline_path = str(Path(args.bench_json).resolve().parent /
                                f"BENCH_PR{pr - 1}.json")
    baseline_memory = {}  # name -> memory_bytes
    baseline_rss = {}     # bench binary -> peak_rss_bytes
    if baseline_path:
        try:
            base = json.load(open(baseline_path))
            for section in ("benchmarks_1thread", "benchmarks"):
                for bench, payload in base.get(section, {}).items():
                    rss = payload.get("context", {}).get("peak_rss_bytes")
                    if rss:
                        baseline_rss.setdefault(bench, rss)
                    for name, r in payload.get("results", {}).items():
                        mem = r.get("counters", {}).get("memory_bytes")
                        if mem is not None:
                            baseline_memory.setdefault(name, mem)
        except (FileNotFoundError, json.JSONDecodeError):
            pass

    memory_fails = []
    seen_memory = set()
    for section in ("benchmarks_1thread", "benchmarks"):
        for bench, payload in data.get(section, {}).items():
            rss = payload.get("context", {}).get("peak_rss_bytes")
            if rss and bench not in seen_memory:
                seen_memory.add(bench)
                line = f"rss {bench}: peak {rss / 1e6:.1f} MB"
                if bench in baseline_rss:
                    line += f" ({rss / baseline_rss[bench]:.2f}x parent)"
                print(line)
            for name, r in sorted(payload.get("results", {}).items()):
                c = r.get("counters", {})
                mem = c.get("memory_bytes")
                if mem is None or name in seen_memory:
                    continue
                seen_memory.add(name)
                dense = c.get("dense_memory_bytes")
                line = f"memory {name}: {mem / 1e6:.2f} MB"
                if dense:
                    line += (f", dense counterfactual {dense / 1e6:.2f} MB "
                             f"({dense / mem:.1f}x reduction)" if mem
                             else "")
                adaptive = c.get("adaptive_memory_bytes")
                adaptive_dense = c.get("adaptive_dense_bytes")
                if adaptive and adaptive_dense:
                    line += (f"; adaptive sets {adaptive / 1e6:.2f} MB vs "
                             f"{adaptive_dense / 1e6:.2f} MB dense "
                             f"({adaptive_dense / adaptive:.1f}x)")
                if name in baseline_memory and baseline_memory[name] > 0:
                    ratio = mem / baseline_memory[name]
                    line += f" [{ratio:.2f}x parent]"
                    if ratio > args.memory_ceiling:
                        memory_fails.append((name, ratio))
                print(line)

    regressed = {name: s for name, s in sorted(speedups.items())
                 if s < args.floor}
    if regressed:
        print(f"\nFAIL: {len(regressed)} benchmark(s) below "
              f"{args.floor:.2f}x:", file=sys.stderr)
        for name, s in regressed.items():
            print(f"  {name}: {s:.2f}x", file=sys.stderr)
        return 1
    if prune_fails:
        print(f"\nFAIL: {len(prune_fails)} lattice benchmark(s) skipping "
              f"less than {args.prune_floor:.0%} of a >10^6 product:",
              file=sys.stderr)
        for name, ratio in prune_fails:
            print(f"  {name}: {ratio:.2%}", file=sys.stderr)
        return 1
    if cache_fails:
        print(f"\nFAIL: {len(cache_fails)} warm-session benchmark(s) with "
              f"zero shared concept-cache hits:", file=sys.stderr)
        for name, threads in cache_fails:
            print(f"  {name} (pooled, {threads} threads)", file=sys.stderr)
        return 1
    if memory_fails:
        print(f"\nFAIL: {len(memory_fails)} benchmark(s) above "
              f"{args.memory_ceiling:.2f}x the parent's memory_bytes:",
              file=sys.stderr)
        for name, ratio in memory_fails:
            print(f"  {name}: {ratio:.2f}x", file=sys.stderr)
        return 1
    print(f"OK: no tracked benchmark below {args.floor:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
