// whynot_cli — ask why-not questions from the command line.
//
// Loads a schema, a data file, and a query; evaluates the query; and
// explains why a given tuple is missing from the answers, using one of:
//
//   * the instance-derived ontology OI (default; Algorithm 2 /
//     INCREMENTAL SEARCH, optionally with selections or full MGE
//     enumeration),
//   * an external DL-LiteR ontology attached by GAV mappings (OBDA route,
//     Definition 4.4; Algorithm 1 / EXHAUSTIVE SEARCH),
//   * an external DL-LiteR ontology attached by an ABox.
//
// Examples:
//   whynot_cli --schema travel.schema --data travel.facts
//       --query 'q(x, y) := Train-Connections(x, z), Train-Connections(z, y)'
//       --whynot '(Amsterdam, New York)'
//
//   whynot_cli --schema travel.schema --data travel.facts
//       --tbox travel.tbox --mappings travel.map
//       --query-file q.txt --whynot '(Amsterdam, New York)'
//       --dot ontology.dot

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "whynot/text/dot_export.h"
#include "whynot/text/parsers.h"
#include "whynot/whynot.h"

namespace wn = whynot;

namespace {

constexpr char kUsage[] = R"(usage: whynot_cli [options]

required:
  --schema FILE        schema document (relation/view/fd/id declarations)
  --data FILE          facts document
  --query TEXT         query, e.g. 'q(x, y) := R(x, z), R(z, y)'
                       (or --query-file FILE)
  --whynot TUPLE       missing tuple, e.g. '(Amsterdam, New York)'
                       (or --why TUPLE: explain why a tuple IS an answer,
                       w.r.t. the derived ontology OI)

ontology source (default: the instance-derived ontology OI):
  --tbox FILE          DL-LiteR TBox
  --mappings FILE      GAV mappings (with --tbox: the OBDA route)
  --abox FILE          ABox assertions (with --tbox: the ABox route)

options:
  --mode MODE          derived: incremental | selections | enumerate
                       external: exhaustive (default)
  --deadline-ms N      wall-clock budget per explain request, in
                       milliseconds; an exceeded deadline exits with
                       code 4 (binding/warm-up is not counted)
  --shorten            make derived explanations irredundant (Prop. 6.2)
  --strong             check whether each reported explanation is strong
  --answers            print the query answers before explaining
  --dot FILE           write the ontology Hasse diagram as Graphviz DOT
                       (external ontologies only), highlighting the first
                       explanation

exit codes:
  0  success
  1  generic error (I/O, parse, inconsistency, ...)
  2  usage error / invalid argument
  3  resource budget exhausted (node/candidate limits)
  4  deadline exceeded (--deadline-ms)
  5  cancelled
)";

wn::Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return wn::Status::NotFound("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct Args {
  std::map<std::string, std::string> values;
  bool Has(const std::string& key) const { return values.count(key) > 0; }
  std::string Get(const std::string& key) const {
    auto it = values.find(key);
    return it == values.end() ? "" : it->second;
  }
};

wn::Result<Args> ParseArgs(int argc, char** argv) {
  Args args;
  const std::map<std::string, bool> known = {
      {"--schema", true},  {"--data", true},   {"--query", true},
      {"--query-file", true}, {"--whynot", true}, {"--why", true},
      {"--tbox", true},
      {"--mappings", true},   {"--abox", true},   {"--mode", true},
      {"--deadline-ms", true},
      {"--strong", false},    {"--shorten", false},
      {"--answers", false},   {"--dot", true},
      {"--help", false},
  };
  for (int i = 1; i < argc; ++i) {
    std::string flag = argv[i];
    auto it = known.find(flag);
    if (it == known.end()) {
      return wn::Status::InvalidArgument("unknown flag: " + flag);
    }
    if (!it->second) {
      args.values[flag] = "1";
      continue;
    }
    if (i + 1 >= argc) {
      return wn::Status::InvalidArgument("missing value for " + flag);
    }
    args.values[flag] = argv[++i];
  }
  return args;
}

// Distinct exit codes per failure class (documented in kUsage), so shell
// callers can tell a blown deadline from a genuinely failed request.
int ExitCodeFor(const wn::Status& status) {
  switch (status.code()) {
    case wn::StatusCode::kInvalidArgument:
      return 2;
    case wn::StatusCode::kResourceExhausted:
      return 3;
    case wn::StatusCode::kDeadlineExceeded:
      return 4;
    case wn::StatusCode::kCancelled:
      return 5;
    default:
      return 1;
  }
}

int Fail(const wn::Status& status) {
  std::cerr << "error: " << status.ToString() << "\n";
  return ExitCodeFor(status);
}

// --deadline-ms, parsed strictly (a mistyped budget must not silently run
// unbounded). 0 = no deadline.
wn::Result<int64_t> DeadlineMsArg(const Args& args) {
  if (!args.Has("--deadline-ms")) return static_cast<int64_t>(0);
  const std::string& text = args.Get("--deadline-ms");
  char* end = nullptr;
  long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || value <= 0) {
    return wn::Status::InvalidArgument(
        "--deadline-ms expects a positive integer, got '" + text + "'");
  }
  return static_cast<int64_t>(value);
}

// Explains against an external finite ontology through a prepared
// ExplainSession (Algorithm 1) and optionally exports the DOT diagram.
// The session binds, warms, and checks the ontology once; a server
// answering many why-not questions over the same data would keep it
// alive and call ExhaustiveMges per request. Bound from the answers the
// caller already evaluated (for validation and printing), so the query
// runs exactly once per CLI invocation.
int ExplainExternal(const wn::onto::FiniteOntology& ontology,
                    const wn::rel::Instance& instance,
                    std::vector<wn::Tuple> answers, const wn::Tuple& missing,
                    const Args& args) {
  auto deadline_ms = DeadlineMsArg(args);
  if (!deadline_ms.ok()) return Fail(deadline_ms.status());
  wn::explain::ExplainSessionOptions options;
  options.request_deadline_ms = deadline_ms.value();
  auto session = wn::explain::ExplainSession::BindWithAnswers(
      &instance, std::move(answers), &ontology, options);
  if (!session.ok()) return Fail(session.status());
  wn::Status consistent = session->CheckConsistent();
  if (!consistent.ok()) return Fail(consistent);
  auto mges = session->ExhaustiveMges(missing);
  if (!mges.ok()) return Fail(mges.status());
  if (mges.value().empty()) {
    std::cout << "no explanation exists over this ontology\n";
    return 0;
  }
  wn::onto::BoundOntology& bound = *session->bound_ontology();
  std::cout << "most-general explanations (" << mges.value().size() << "):\n";
  for (const wn::explain::Explanation& e : mges.value()) {
    std::cout << "  " << wn::explain::ExplanationToString(bound, e) << "\n";
  }
  if (args.Has("--dot")) {
    wn::text::DotOptions dot_options;
    dot_options.highlight = mges.value().front();
    std::ofstream out(args.Get("--dot"));
    if (!out) {
      return Fail(wn::Status::NotFound("cannot write " + args.Get("--dot")));
    }
    out << wn::text::OntologyToDot(&bound, dot_options);
    std::cout << "wrote " << args.Get("--dot") << "\n";
  }
  return 0;
}

// Explains against the derived ontology OI through a prepared session
// (bound from the already-evaluated answers, as above).
int ExplainDerived(const wn::rel::Instance& instance,
                   const wn::rel::UnionQuery& query,
                   std::vector<wn::Tuple> answers, const wn::Tuple& missing,
                   const Args& args) {
  std::string mode = args.Has("--mode") ? args.Get("--mode") : "incremental";
  auto deadline_ms = DeadlineMsArg(args);
  if (!deadline_ms.ok()) return Fail(deadline_ms.status());
  wn::explain::ExplainSessionOptions options;
  options.incremental.with_selections = mode == "selections";
  options.request_deadline_ms = deadline_ms.value();
  auto session = wn::explain::ExplainSession::BindWithAnswers(
      &instance, std::move(answers), /*ontology=*/nullptr, options);
  if (!session.ok()) return Fail(session.status());
  std::vector<wn::explain::LsExplanation> results;
  if (mode == "enumerate") {
    auto all = session->EnumerateMges(missing);
    if (!all.ok()) return Fail(all.status());
    results = std::move(all).value();
    std::cout << "most-general explanations (" << results.size() << "):\n";
  } else if (mode == "incremental" || mode == "selections") {
    auto one = session->WhyNot(missing);
    if (!one.ok()) return Fail(one.status());
    results.push_back(std::move(one).value());
    std::cout << "most-general explanation:\n";
  } else {
    return Fail(wn::Status::InvalidArgument("unknown --mode: " + mode));
  }
  if (args.Has("--shorten")) {
    for (wn::explain::LsExplanation& e : results) {
      e = wn::explain::MakeIrredundant(e, instance);
    }
  }
  for (const wn::explain::LsExplanation& e : results) {
    std::cout << "  "
              << wn::explain::LsExplanationToString(instance.schema(), e)
              << "\n";
  }
  if (args.Has("--strong")) {
    for (const wn::explain::LsExplanation& e : results) {
      auto d = wn::explain::DecideStrongExplanation(instance.schema(), query, e);
      if (!d.ok()) return Fail(d.status());
      std::cout << "  strong? "
                << wn::explain::StrongVerdictName(d.value().verdict);
      if (d.value().verdict == wn::explain::StrongVerdict::kNotStrong) {
        std::cout << " (another instance admits "
                  << wn::TupleToString(d.value().witness) << ")";
      } else if (!d.value().detail.empty()) {
        std::cout << " (" << d.value().detail << ")";
      }
      std::cout << "\n";
    }
  }
  return 0;
}

int Run(int argc, char** argv) {
  auto args_or = ParseArgs(argc, argv);
  if (!args_or.ok()) {
    std::cerr << kUsage;
    return Fail(args_or.status());
  }
  const Args& args = args_or.value();
  if (args.Has("--help") || argc == 1) {
    std::cout << kUsage;
    return 0;
  }
  for (const char* required : {"--schema", "--data"}) {
    if (!args.Has(required)) {
      std::cerr << kUsage;
      return Fail(wn::Status::InvalidArgument(std::string(required) +
                                              " is required"));
    }
  }
  if (!args.Has("--whynot") && !args.Has("--why")) {
    std::cerr << kUsage;
    return Fail(
        wn::Status::InvalidArgument("--whynot or --why is required"));
  }
  if (!args.Has("--query") && !args.Has("--query-file")) {
    std::cerr << kUsage;
    return Fail(wn::Status::InvalidArgument("--query or --query-file is "
                                            "required"));
  }

  // --- Load schema, data, query, missing tuple.
  auto schema_text = ReadFile(args.Get("--schema"));
  if (!schema_text.ok()) return Fail(schema_text.status());
  auto schema = wn::text::ParseSchema(schema_text.value());
  if (!schema.ok()) return Fail(schema.status());

  auto data_text = ReadFile(args.Get("--data"));
  if (!data_text.ok()) return Fail(data_text.status());
  wn::rel::Instance instance(&schema.value());
  wn::Status st = wn::text::ParseFactsInto(data_text.value(), &instance);
  if (!st.ok()) return Fail(st);
  if (schema.value().HasViews()) {
    st = wn::rel::MaterializeViews(&instance);
    if (!st.ok()) return Fail(st);
  }
  st = instance.SatisfiesConstraints();
  if (!st.ok()) return Fail(st);

  std::string query_text = args.Get("--query");
  if (args.Has("--query-file")) {
    auto file = ReadFile(args.Get("--query-file"));
    if (!file.ok()) return Fail(file.status());
    query_text = file.value();
  }
  auto query = wn::text::ParseQuery(query_text, schema.value());
  if (!query.ok()) return Fail(query.status());

  // --why: the dual question, answered w.r.t. the derived ontology OI.
  if (args.Has("--why")) {
    auto present = wn::text::ParseTuple(args.Get("--why"));
    if (!present.ok()) return Fail(present.status());
    auto deadline_ms = DeadlineMsArg(args);
    if (!deadline_ms.ok()) return Fail(deadline_ms.status());
    wn::explain::ExplainSessionOptions options;
    options.incremental.with_selections = args.Get("--mode") == "selections";
    options.request_deadline_ms = deadline_ms.value();
    auto session = wn::explain::ExplainSession::Bind(
        &instance, query.value(), /*ontology=*/nullptr, options);
    if (!session.ok()) return Fail(session.status());
    std::cout << "why " << wn::TupleToString(present.value())
              << "? (derived ontology OI)\n";
    auto e = session->Why(present.value());
    if (!e.ok()) return Fail(e.status());
    std::cout << "most-general why-explanation:\n  "
              << wn::explain::LsExplanationToString(schema.value(), e.value())
              << "\n";
    return 0;
  }

  auto missing = wn::text::ParseTuple(args.Get("--whynot"));
  if (!missing.ok()) return Fail(missing.status());

  // Validate the question and print the answers; the explain routes
  // below bind their prepared sessions from this answer set, so the
  // query is evaluated exactly once.
  auto wni = wn::explain::MakeWhyNotInstance(&instance, query.value(),
                                             missing.value());
  if (!wni.ok()) return Fail(wni.status());

  std::cout << "query answers: " << wni.value().answers.size() << " tuples\n";
  if (args.Has("--answers")) {
    for (const wn::Tuple& t : wni.value().answers) {
      std::cout << "  " << wn::TupleToString(t) << "\n";
    }
  }
  std::cout << "why not " << wn::TupleToString(missing.value()) << "?\n";
  std::vector<wn::Tuple> answers = std::move(wni.value().answers);

  // --- Choose the ontology route.
  if (args.Has("--tbox")) {
    auto tbox_text = ReadFile(args.Get("--tbox"));
    if (!tbox_text.ok()) return Fail(tbox_text.status());
    auto tbox = wn::text::ParseTBox(tbox_text.value());
    if (!tbox.ok()) return Fail(tbox.status());
    if (args.Has("--mappings")) {
      auto map_text = ReadFile(args.Get("--mappings"));
      if (!map_text.ok()) return Fail(map_text.status());
      auto mappings = wn::text::ParseMappings(map_text.value(), schema.value());
      if (!mappings.ok()) return Fail(mappings.status());
      wn::obda::ObdaSpec spec(tbox.value(), &schema.value(),
                              std::move(mappings).value());
      st = spec.Validate();
      if (!st.ok()) return Fail(st);
      st = spec.CheckConsistent(instance);
      if (!st.ok()) return Fail(st);
      wn::obda::ObdaInducedOntology induced(&spec);
      return ExplainExternal(induced, instance, std::move(answers),
                             missing.value(), args);
    }
    if (args.Has("--abox")) {
      auto abox_text = ReadFile(args.Get("--abox"));
      if (!abox_text.ok()) return Fail(abox_text.status());
      auto abox = wn::text::ParseAbox(abox_text.value());
      if (!abox.ok()) return Fail(abox.status());
      auto ontology =
          wn::dl::AboxOntology::Make(&tbox.value(), std::move(abox).value());
      if (!ontology.ok()) return Fail(ontology.status());
      return ExplainExternal(*ontology.value(), instance,
                             std::move(answers), missing.value(), args);
    }
    return Fail(wn::Status::InvalidArgument(
        "--tbox requires --mappings (OBDA) or --abox"));
  }
  return ExplainDerived(instance, query.value(), std::move(answers),
                        missing.value(), args);
}

}  // namespace

int main(int argc, char** argv) { return Run(argc, argv); }
