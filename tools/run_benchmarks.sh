#!/usr/bin/env bash
# Builds the Release tree and runs the perf-trajectory benchmarks with JSON
# output, merging the results into BENCH_PR<N>.json at the repo root and
# computing speedup_vs_baseline against the previous PR's numbers.
#
# Since PR 4 every benchmark runs twice: once with the pool at its natural
# width (WHYNOT_THREADS unset => hardware concurrency, recorded per run)
# and once pinned to 1 thread. The 1-thread row is the regression gate —
# tools/check_bench.py reads speedup_vs_baseline, computed from it, so the
# serial path can never hide behind thread-level parallelism; the pooled
# row lands in "benchmarks" / speedup_pooled_vs_baseline for the scaling
# trajectory.
#
# Baseline resolution per benchmark name, in order:
#   1. BENCH_PR<N-1>.json "benchmarks" (the previous PR's measured results);
#   2. the output file's own "baseline_prev" section — pre-refactor numbers
#      captured on the parent commit for benchmarks the previous PR did not
#      track (seeded once, preserved across re-runs).
#
# Usage: tools/run_benchmarks.sh [build-dir] [min-time-seconds] [pr-number]
#                                [baseline-json]
#
# baseline-json defaults to BENCH_PR<N-1>.json. Pass an explicit file to
# gate against numbers measured on the *same host in the same session*
# (e.g. a parent-tree run minutes earlier) when the host's absolute timing
# drifts between days — virtualized single-core runners easily wander
# ±20%, which swamps the 0.85× floor on µs-scale entries.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build-rel}"
MIN_TIME="${2:-0.2}"
PR="${3:-10}"
OUT="$REPO_ROOT/BENCH_PR${PR}.json"
BASELINE="${4:-$REPO_ROOT/BENCH_PR$((PR - 1)).json}"
BENCHES=(bench_table1_subsumption bench_why bench_enumerate
         bench_incremental bench_lub bench_exhaustive bench_check_mge
         bench_cardinality bench_parallel bench_session bench_memory
         bench_concept_cache)
POOLED_THREADS="${WHYNOT_THREADS:-$(nproc)}"

# Runs one bench invocation, writing its JSON stdout to $1 and its peak
# resident set in bytes to $2 (merged into the result's context block as
# peak_rss_bytes). The image has no GNU time binary, so a python wrapper
# reads the child rusage instead.
run_bench() {
  python3 - "$@" <<'PYEOF'
import resource, subprocess, sys
out_path, rss_path, *cmd = sys.argv[1:]
with open(out_path, "w") as out:
    subprocess.run(cmd, stdout=out, check=True)
rss_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
with open(rss_path, "w") as f:
    f.write(str(rss_kb * 1024))
PYEOF
}

# WHYNOT_BENCH_RESULTS_DIR: when set, skip building/running and merge
# pre-measured <bench>.pooled.json / <bench>.1thread.json files from that
# directory instead. Lets a driver interleave baseline-tree and
# current-tree runs (and min-filter rounds) on hosts whose absolute timing
# drifts — the merge/gate artifact is still produced by this script.
if [ -n "${WHYNOT_BENCH_RESULTS_DIR:-}" ]; then
  TMP_DIR="$WHYNOT_BENCH_RESULTS_DIR"
else
  cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release \
        -DWHYNOT_BUILD_TESTS=OFF -DWHYNOT_BUILD_EXAMPLES=OFF \
        -DWHYNOT_BUILD_TOOLS=OFF
  cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${BENCHES[@]}"

  TMP_DIR="$(mktemp -d)"
  trap 'rm -rf "$TMP_DIR"' EXIT
  for bench in "${BENCHES[@]}"; do
    echo "Running $bench (pooled, $POOLED_THREADS threads) ..." >&2
    # Median of 3 repetitions: single runs of the µs-scale
    # canonical-instance microbenchmarks are too noisy for the gate.
    WHYNOT_THREADS="$POOLED_THREADS" run_bench \
        "$TMP_DIR/$bench.pooled.json" "$TMP_DIR/$bench.pooled.rss" \
        "$BUILD_DIR/$bench" --benchmark_format=json \
        --benchmark_min_time="$MIN_TIME" --benchmark_repetitions=3 \
        --benchmark_report_aggregates_only=true
    echo "Running $bench (1 thread) ..." >&2
    WHYNOT_THREADS=1 run_bench \
        "$TMP_DIR/$bench.1thread.json" "$TMP_DIR/$bench.1thread.rss" \
        "$BUILD_DIR/$bench" --benchmark_format=json \
        --benchmark_min_time="$MIN_TIME" --benchmark_repetitions=3 \
        --benchmark_report_aggregates_only=true
  done
fi

python3 - "$OUT" "$BASELINE" "$TMP_DIR" "$PR" "$POOLED_THREADS" \
    "${BENCHES[@]}" <<'EOF'
import json, sys

out_path, baseline_path, tmp_dir, pr, pooled_threads, *benches = sys.argv[1:]
merged = {"schema": "whynot-bench-v2", "pr": int(pr), "benchmarks": {}}
try:
    merged = json.load(open(out_path))
except (FileNotFoundError, json.JSONDecodeError):
    pass
merged["schema"] = "whynot-bench-v2"
merged.setdefault("benchmarks", {})
merged.setdefault("benchmarks_1thread", {})

baseline_times = {}  # name -> (real_time, time_unit)
try:
    prev = json.load(open(baseline_path))
    for bench, data in prev.get("benchmarks", {}).items():
        for name, r in data.get("results", {}).items():
            baseline_times[name] = (r["real_time"], r.get("time_unit"))
except (FileNotFoundError, json.JSONDecodeError):
    pass
# Parent-commit numbers for benchmarks the previous PR did not track.
for bench, data in merged.get("baseline_prev", {}).items():
    for name, r in data.get("results", {}).items():
        baseline_times.setdefault(name, (r["real_time"], r.get("time_unit")))


# Non-counter fields of a google-benchmark result row; everything numeric
# outside this set is a user counter (raw_product, prune_skipped, ...) and
# is carried into the merged artifact so check_bench.py can report
# pruning effectiveness.
STANDARD_FIELDS = {
    "name", "family_index", "per_family_instance_index", "run_name",
    "run_type", "repetitions", "repetition_index", "threads", "iterations",
    "real_time", "cpu_time", "time_unit", "aggregate_name", "aggregate_unit",
}


def load(bench, flavor):
    data = json.load(open(f"{tmp_dir}/{bench}.{flavor}.json"))
    context = data.get("context", {})
    try:
        with open(f"{tmp_dir}/{bench}.{flavor}.rss") as f:
            context["peak_rss_bytes"] = int(f.read().strip())
    except (FileNotFoundError, ValueError):
        pass
    # Aggregate runs report <name>_mean/_median/_stddev/_cv; keep the
    # median under the plain benchmark name. Plain names pass through.
    results = {}
    for b in data.get("benchmarks", []):
        name = b["name"]
        if b.get("run_type") == "aggregate":
            if b.get("aggregate_name") != "median":
                continue
            name = name[: -len("_median")]
        row = {"real_time": b["real_time"], "time_unit": b["time_unit"]}
        counters = {k: v for k, v in b.items()
                    if k not in STANDARD_FIELDS and isinstance(v, (int, float))}
        if counters:
            row["counters"] = counters
        results[name] = row
    return context, results


def speedups_against_baseline(results):
    out = {}
    for name, r in results.items():
        if name not in baseline_times or r["real_time"] <= 0:
            continue
        base_time, base_unit = baseline_times[name]
        if base_unit != r["time_unit"]:
            print(f"skipping {name}: time_unit changed "
                  f"({base_unit} -> {r['time_unit']})", file=sys.stderr)
            continue
        out[name] = round(base_time / r["real_time"], 2)
    return out


gate_speedups = {}
pooled_speedups = {}
for bench in benches:
    context, pooled = load(bench, "pooled")
    context["whynot_threads"] = int(pooled_threads)
    merged["benchmarks"][bench] = {"context": context, "results": pooled}
    context1, serial = load(bench, "1thread")
    context1["whynot_threads"] = 1
    merged["benchmarks_1thread"][bench] = {"context": context1,
                                           "results": serial}
    gate_speedups.update(speedups_against_baseline(serial))
    pooled_speedups.update(speedups_against_baseline(pooled))
merged["speedup_vs_baseline"] = gate_speedups          # 1-thread serial gate
merged["speedup_pooled_vs_baseline"] = pooled_speedups  # scaling trajectory
json.dump(merged, open(out_path, "w"), indent=1, sort_keys=True)
print(f"wrote {out_path}")
EOF
