#!/usr/bin/env bash
# Builds the Release tree and runs the perf-trajectory benchmarks
# (bench_table1_subsumption, bench_why, bench_enumerate) with JSON output,
# merging the results into BENCH_PR1.json at the repo root.
#
# Usage: tools/run_benchmarks.sh [build-dir] [min-time-seconds]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build-rel}"
MIN_TIME="${2:-0.2}"
OUT="$REPO_ROOT/BENCH_PR1.json"
BENCHES=(bench_table1_subsumption bench_why bench_enumerate)

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release \
      -DWHYNOT_BUILD_TESTS=OFF -DWHYNOT_BUILD_EXAMPLES=OFF \
      -DWHYNOT_BUILD_TOOLS=OFF
cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${BENCHES[@]}"

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT
for bench in "${BENCHES[@]}"; do
  echo "Running $bench ..." >&2
  "$BUILD_DIR/$bench" --benchmark_format=json \
      --benchmark_min_time="$MIN_TIME" > "$TMP_DIR/$bench.json"
done

python3 - "$OUT" "$TMP_DIR" "${BENCHES[@]}" <<'EOF'
import json, sys

out_path, tmp_dir, *benches = sys.argv[1:]
merged = {"schema": "whynot-bench-v1", "benchmarks": {}}
try:
    merged = json.load(open(out_path))
    merged.setdefault("benchmarks", {})
except (FileNotFoundError, json.JSONDecodeError):
    pass
for bench in benches:
    data = json.load(open(f"{tmp_dir}/{bench}.json"))
    merged["benchmarks"][bench] = {
        "context": data.get("context", {}),
        "results": {
            b["name"]: {"real_time": b["real_time"],
                        "time_unit": b["time_unit"]}
            for b in data.get("benchmarks", [])
        },
    }
json.dump(merged, open(out_path, "w"), indent=1, sort_keys=True)
print(f"wrote {out_path}")
EOF
