#!/usr/bin/env bash
# Builds the Release tree and runs the perf-trajectory benchmarks with JSON
# output, merging the results into BENCH_PR<N>.json at the repo root and
# computing speedup_vs_baseline against the previous PR's numbers.
#
# Baseline resolution per benchmark name, in order:
#   1. BENCH_PR<N-1>.json "benchmarks" (the previous PR's measured results);
#   2. the output file's own "baseline_prev" section — pre-refactor numbers
#      captured on the parent commit for benchmarks the previous PR did not
#      track (seeded once, preserved across re-runs).
#
# Usage: tools/run_benchmarks.sh [build-dir] [min-time-seconds] [pr-number]
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-$REPO_ROOT/build-rel}"
MIN_TIME="${2:-0.2}"
PR="${3:-3}"
OUT="$REPO_ROOT/BENCH_PR${PR}.json"
BASELINE="$REPO_ROOT/BENCH_PR$((PR - 1)).json"
BENCHES=(bench_table1_subsumption bench_why bench_enumerate
         bench_incremental bench_lub bench_exhaustive bench_check_mge
         bench_cardinality)

cmake -B "$BUILD_DIR" -S "$REPO_ROOT" -DCMAKE_BUILD_TYPE=Release \
      -DWHYNOT_BUILD_TESTS=OFF -DWHYNOT_BUILD_EXAMPLES=OFF \
      -DWHYNOT_BUILD_TOOLS=OFF
cmake --build "$BUILD_DIR" -j "$(nproc)" --target "${BENCHES[@]}"

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT
for bench in "${BENCHES[@]}"; do
  echo "Running $bench ..." >&2
  # Median of 3 repetitions: single runs of the µs-scale canonical-instance
  # microbenchmarks are too noisy for the regression gate.
  "$BUILD_DIR/$bench" --benchmark_format=json \
      --benchmark_min_time="$MIN_TIME" --benchmark_repetitions=3 \
      --benchmark_report_aggregates_only=true > "$TMP_DIR/$bench.json"
done

python3 - "$OUT" "$BASELINE" "$TMP_DIR" "$PR" "${BENCHES[@]}" <<'EOF'
import json, sys

out_path, baseline_path, tmp_dir, pr, *benches = sys.argv[1:]
merged = {"schema": "whynot-bench-v1", "pr": int(pr), "benchmarks": {}}
try:
    merged = json.load(open(out_path))
    merged.setdefault("benchmarks", {})
except (FileNotFoundError, json.JSONDecodeError):
    pass

baseline_times = {}  # name -> (real_time, time_unit)
try:
    prev = json.load(open(baseline_path))
    for bench, data in prev.get("benchmarks", {}).items():
        for name, r in data.get("results", {}).items():
            baseline_times[name] = (r["real_time"], r.get("time_unit"))
except (FileNotFoundError, json.JSONDecodeError):
    pass
# Parent-commit numbers for benchmarks the previous PR did not track.
for bench, data in merged.get("baseline_prev", {}).items():
    for name, r in data.get("results", {}).items():
        baseline_times.setdefault(name, (r["real_time"], r.get("time_unit")))

speedups = {}
for bench in benches:
    data = json.load(open(f"{tmp_dir}/{bench}.json"))
    # Aggregate runs report <name>_mean/_median/_stddev/_cv; keep the
    # median under the plain benchmark name. Plain names pass through.
    results = {}
    for b in data.get("benchmarks", []):
        name = b["name"]
        if b.get("run_type") == "aggregate":
            if b.get("aggregate_name") != "median":
                continue
            name = name[: -len("_median")]
        results[name] = {"real_time": b["real_time"],
                         "time_unit": b["time_unit"]}
    merged["benchmarks"][bench] = {
        "context": data.get("context", {}),
        "results": results,
    }
    for name, r in results.items():
        if name not in baseline_times or r["real_time"] <= 0:
            continue
        base_time, base_unit = baseline_times[name]
        if base_unit != r["time_unit"]:
            print(f"skipping {name}: time_unit changed "
                  f"({base_unit} -> {r['time_unit']})", file=sys.stderr)
            continue
        speedups[name] = round(base_time / r["real_time"], 2)
merged["speedup_vs_baseline"] = speedups
json.dump(merged, open(out_path, "w"), indent=1, sort_keys=True)
print(f"wrote {out_path}")
EOF
