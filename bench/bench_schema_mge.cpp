// Experiment E18 (DESIGN.md): Proposition 5.3 — COMPUTE-ONE-MGE w.r.t. OS
// via materializing OS[K]: PTIME for LminS with fixed query arity over a
// PTIME-subsumption schema class, exponential for richer fragments.
//
// Expected shape: the LminS route grows polynomially with the instance;
// the selection-free fragment grows much faster (syntactic closure).

#include <benchmark/benchmark.h>

#include "whynot/whynot.h"

namespace wn = whynot;
namespace rel = whynot::rel;

namespace {

struct Fixture {
  std::unique_ptr<rel::Schema> schema;
  std::unique_ptr<rel::Instance> instance;
  wn::explain::WhyNotInstance wni;
};

/// A views-only schema (a decidable Table 1 class) with a scaled instance.
std::unique_ptr<Fixture> MakeFixture(int rows) {
  auto f = std::make_unique<Fixture>();
  f->schema = std::make_unique<rel::Schema>();
  if (!f->schema->AddRelation("Cities", {"name", "population"}).ok()) {
    return nullptr;
  }
  rel::ConjunctiveQuery big;
  big.head = {"x"};
  rel::Atom atom;
  atom.relation = "Cities";
  atom.args = {rel::Term::Var("x"), rel::Term::Var("y")};
  big.atoms = {atom};
  big.comparisons = {{"y", rel::CmpOp::kGe, wn::Value(100)}};
  rel::UnionQuery def;
  def.disjuncts.push_back(std::move(big));
  if (!f->schema->AddView("Big", {"name"}, std::move(def)).ok()) {
    return nullptr;
  }
  f->instance = std::make_unique<rel::Instance>(f->schema.get());
  for (int i = 0; i < rows; ++i) {
    (void)f->instance->AddFact(
        "Cities", {"city" + std::to_string(i), 10 * i});
  }
  if (!rel::MaterializeViews(f->instance.get()).ok()) return nullptr;

  rel::ConjunctiveQuery q;
  q.head = {"x"};
  rel::Atom big_atom;
  big_atom.relation = "Big";
  big_atom.args = {rel::Term::Var("x")};
  q.atoms = {big_atom};
  rel::UnionQuery query;
  query.disjuncts.push_back(std::move(q));
  auto wni = wn::explain::MakeWhyNotInstance(f->instance.get(), query,
                                             {wn::Value("city0")});
  if (!wni.ok()) return nullptr;
  f->wni = std::move(wni).value();
  return f;
}

void BM_SchemaMge_MinimalFragment(benchmark::State& state) {
  auto f = MakeFixture(static_cast<int>(state.range(0)));
  if (f == nullptr) {
    state.SkipWithError("fixture");
    return;
  }
  wn::explain::DerivedMgeOptions options;
  options.fragment = wn::ls::Fragment::kMinimal;
  options.mode = wn::ls::SubsumptionMode::kSchema;
  options.max_concepts = 100000;
  for (auto _ : state) {
    auto r = wn::explain::ComputeAllMgeDerived(f->wni, options);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SchemaMge_MinimalFragment)->RangeMultiplier(2)->Range(4, 32);

void BM_SchemaMge_InstanceModeBaseline(benchmark::State& state) {
  auto f = MakeFixture(static_cast<int>(state.range(0)));
  if (f == nullptr) {
    state.SkipWithError("fixture");
    return;
  }
  wn::explain::DerivedMgeOptions options;
  options.fragment = wn::ls::Fragment::kMinimal;
  options.mode = wn::ls::SubsumptionMode::kInstance;
  for (auto _ : state) {
    auto r = wn::explain::ComputeAllMgeDerived(f->wni, options);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SchemaMge_InstanceModeBaseline)
    ->RangeMultiplier(2)
    ->Range(4, 32);

}  // namespace
