// Experiment E24 (DESIGN.md): Section 6 introduces *strong explanations*
// (instance-independent: the concept product avoids q on every instance of
// the schema) and leaves their theory to future work. This benchmark
// measures the canonical-pattern decision procedure:
//
//   * branch growth: the procedure branches over query disjuncts × view
//     expansion options per concept conjunct — exponential in the number
//     of view conjuncts (the counterpart of Table 1's view rows);
//   * FD chase cost: polynomial in the pattern size for a fixed schema;
//   * the no-constraint case is flat and fast.

#include <benchmark/benchmark.h>

#include <cmath>

#include "whynot/whynot.h"

namespace wn = whynot;

namespace {

// Schema with one wide data relation and `num_views` single-disjunct views
// over it.
wn::Result<wn::rel::Schema> ViewSchema(int num_views, int disjuncts_per_view) {
  wn::rel::Schema schema;
  WHYNOT_RETURN_IF_ERROR(schema.AddRelation("R", {"a", "b", "c"}));
  for (int v = 0; v < num_views; ++v) {
    wn::rel::UnionQuery def;
    for (int d = 0; d < disjuncts_per_view; ++d) {
      wn::rel::ConjunctiveQuery cq;
      cq.head = {"x"};
      wn::rel::Atom atom;
      atom.relation = "R";
      atom.args = {wn::rel::Term::Var("x"), wn::rel::Term::Var("y"),
                   wn::rel::Term::Var("z")};
      cq.atoms = {atom};
      cq.comparisons = {{"y", wn::rel::CmpOp::kGe,
                         wn::Value(static_cast<int64_t>(10 * d))}};
      def.disjuncts.push_back(std::move(cq));
    }
    WHYNOT_RETURN_IF_ERROR(
        schema.AddView("V" + std::to_string(v), {"x"}, std::move(def)));
  }
  return schema;
}

wn::rel::UnionQuery UnaryQuery() {
  wn::rel::ConjunctiveQuery cq;
  cq.head = {"x"};
  wn::rel::Atom atom;
  atom.relation = "R";
  atom.args = {wn::rel::Term::Var("x"), wn::rel::Term::Var("y"),
               wn::rel::Term::Var("z")};
  cq.atoms = {atom};
  wn::rel::UnionQuery q;
  q.disjuncts.push_back(std::move(cq));
  return q;
}

// Branch growth: the candidate intersects `conjuncts` view concepts, each
// with `range(1)` expansion disjuncts. Branches = disjuncts^conjuncts.
void BM_StrongDecide_ViewConjunctSweep(benchmark::State& state) {
  int conjuncts = static_cast<int>(state.range(0));
  int per_view = static_cast<int>(state.range(1));
  auto schema = ViewSchema(conjuncts, per_view);
  if (!schema.ok()) {
    state.SkipWithError("schema");
    return;
  }
  std::vector<wn::ls::Conjunct> cs;
  for (int v = 0; v < conjuncts; ++v) {
    cs.push_back(wn::ls::Conjunct::Projection("V" + std::to_string(v), 0));
  }
  wn::explain::LsExplanation candidate = {wn::ls::LsConcept(cs)};
  for (auto _ : state) {
    auto d = wn::explain::DecideStrongExplanation(schema.value(), UnaryQuery(),
                                                  candidate);
    if (!d.ok()) {
      state.SkipWithError(d.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(d);
  }
  state.counters["branches"] = std::pow(static_cast<double>(per_view),
                                        static_cast<double>(conjuncts));
}
BENCHMARK(BM_StrongDecide_ViewConjunctSweep)
    ->ArgsProduct({{1, 2, 3, 4}, {2, 3}});

// FD chase cost: candidate with `range(0)` data-relation conjuncts over a
// schema with FDs — the pattern has that many R-atoms to chase.
void BM_StrongDecide_FdChaseSweep(benchmark::State& state) {
  int conjuncts = static_cast<int>(state.range(0));
  wn::rel::Schema schema;
  if (!schema.AddRelation("R", {"a", "b", "c"}).ok() ||
      !schema.AddFd({"R", {0}, {1}}).ok() ||
      !schema.AddFd({"R", {1}, {2}}).ok()) {
    state.SkipWithError("schema");
    return;
  }
  std::vector<wn::ls::Conjunct> cs;
  for (int k = 0; k < conjuncts; ++k) {
    cs.push_back(wn::ls::Conjunct::Projection(
        "R", 0,
        {{2, wn::rel::CmpOp::kGe, wn::Value(static_cast<int64_t>(k))}}));
  }
  wn::explain::LsExplanation candidate = {wn::ls::LsConcept(cs)};
  for (auto _ : state) {
    auto d = wn::explain::DecideStrongExplanation(schema, UnaryQuery(),
                                                  candidate);
    if (!d.ok()) {
      state.SkipWithError(d.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(d);
  }
  state.counters["pattern_atoms"] = static_cast<double>(conjuncts + 1);
}
BENCHMARK(BM_StrongDecide_FdChaseSweep)->DenseRange(1, 9, 2);

// Baseline: no constraints, plain conjunct sweep — flat and fast.
void BM_StrongDecide_NoConstraints(benchmark::State& state) {
  int conjuncts = static_cast<int>(state.range(0));
  wn::rel::Schema schema;
  if (!schema.AddRelation("R", {"a", "b", "c"}).ok()) {
    state.SkipWithError("schema");
    return;
  }
  std::vector<wn::ls::Conjunct> cs;
  for (int k = 0; k < conjuncts; ++k) {
    cs.push_back(wn::ls::Conjunct::Projection(
        "R", 0,
        {{2, wn::rel::CmpOp::kGe, wn::Value(static_cast<int64_t>(k))}}));
  }
  wn::explain::LsExplanation candidate = {wn::ls::LsConcept(cs)};
  for (auto _ : state) {
    auto d = wn::explain::DecideStrongExplanation(schema, UnaryQuery(),
                                                  candidate);
    if (!d.ok()) {
      state.SkipWithError(d.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(d);
  }
}
BENCHMARK(BM_StrongDecide_NoConstraints)->DenseRange(1, 9, 2);

}  // namespace
