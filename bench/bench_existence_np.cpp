// Experiment E14 (DESIGN.md): Theorem 5.1.2 — EXISTENCE-OF-EXPLANATION is
// NP-complete, via the SET COVER reduction (bounded schema arity, query
// arity = cover bound).
//
// Expected shape: the backtracking decision procedure scales super-
// polynomially in the cover bound on tight instances, while shallow
// instances (easily coverable) stay fast.

#include <benchmark/benchmark.h>

#include "whynot/whynot.h"

namespace wn = whynot;

namespace {

void BM_Existence_CoverBoundSweep(benchmark::State& state) {
  size_t bound_k = static_cast<size_t>(state.range(0));
  // Tight family: universe scales with the bound, sets are small, so the
  // search must consider many combinations.
  wn::explain::SetCoverInstance sc = wn::explain::RandomSetCover(
      /*universe=*/3 * bound_k, /*num_sets=*/2 * bound_k + 4,
      /*set_size=*/4, bound_k, /*seed=*/42);
  auto reduction = wn::explain::ReduceSetCoverToWhyNot(sc);
  if (!reduction.ok()) {
    state.SkipWithError("reduction");
    return;
  }
  wn::onto::BoundOntology bound((*reduction)->ontology.get(),
                                (*reduction)->instance.get());
  wn::explain::ExistenceOptions options;
  options.max_nodes = 500000000;
  bool exists = false;
  for (auto _ : state) {
    auto r = wn::explain::ExistsExplanation(&bound, (*reduction)->wni,
                                            nullptr, options);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    if (r.ok()) exists = r.value();
    benchmark::DoNotOptimize(r);
  }
  state.counters["cover_bound"] = static_cast<double>(bound_k);
  state.counters["universe"] = static_cast<double>(sc.universe);
  state.SetLabel(exists ? "cover exists" : "no cover");
}
BENCHMARK(BM_Existence_CoverBoundSweep)->DenseRange(2, 7);

void BM_Existence_UniverseSweep(benchmark::State& state) {
  size_t universe = static_cast<size_t>(state.range(0));
  wn::explain::SetCoverInstance sc = wn::explain::RandomSetCover(
      universe, /*num_sets=*/10, /*set_size=*/universe / 3 + 1,
      /*bound=*/4, /*seed=*/7);
  auto reduction = wn::explain::ReduceSetCoverToWhyNot(sc);
  if (!reduction.ok()) {
    state.SkipWithError("reduction");
    return;
  }
  wn::onto::BoundOntology bound((*reduction)->ontology.get(),
                                (*reduction)->instance.get());
  for (auto _ : state) {
    auto r = wn::explain::ExistsExplanation(&bound, (*reduction)->wni);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["universe"] = static_cast<double>(universe);
}
BENCHMARK(BM_Existence_UniverseSweep)->RangeMultiplier(2)->Range(8, 64);

}  // namespace
