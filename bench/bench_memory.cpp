// PR 7: hybrid-container memory benchmarks. Two layers:
//
//  * Container micro-benches — build, Contains, and fused AndCount over a
//    density sweep from 0.1% to 90% of a 2^20-bit universe, hybrid vs the
//    flat DenseBitmap at each point. Every entry exports memory_bytes and
//    dense_memory_bytes counters, so the sweep doubles as a size curve:
//    below the per-chunk crossover the hybrid containers shrink toward
//    2 bytes/element while the dense form stays at universe/8 bytes.
//
//  * Warm-session residency — N concurrently warm ExplainSessions over the
//    retail workload and over deep-lattice workloads whose lower-level
//    extensions are sparse over a large interned domain. Counters report
//    the session-aggregated MemoryUsage() (the BENCH memory column):
//    memory_bytes vs dense_memory_bytes is the measured residency
//    reduction against the force-dense counterfactual, and
//    adaptive_memory_bytes vs adaptive_dense_bytes isolates the sets the
//    container layer actually converts (extensions + answer covers).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "whynot/common/hybrid_bitmap.h"
#include "whynot/whynot.h"

namespace wn = whynot;

namespace {

constexpr int64_t kUniverseBits = 1 << 20;

/// Deterministic id set at `permille`/1000 density over the universe.
std::vector<wn::ValueId> DensityIds(int64_t permille, uint64_t seed) {
  wn::workload::Rng rng(seed);
  std::vector<wn::ValueId> ids;
  ids.reserve(static_cast<size_t>(kUniverseBits * permille / 1000));
  for (int64_t id = 0; id < kUniverseBits; ++id) {
    if (rng.Below(1000) < static_cast<uint64_t>(permille)) {
      ids.push_back(static_cast<wn::ValueId>(id));
    }
  }
  return ids;
}

void ReportContainerSize(benchmark::State& state, const wn::HybridBitmap& h,
                         bool hybrid) {
  state.counters["memory_bytes"] = hybrid
                                       ? static_cast<double>(h.MemoryBytes())
                                       : static_cast<double>(
                                             h.DenseEquivalentBytes());
  state.counters["dense_memory_bytes"] =
      static_cast<double>(h.DenseEquivalentBytes());
  state.counters["density_permille"] = static_cast<double>(state.range(0));
}

// --- container build -------------------------------------------------------

void BM_ContainerBuild(benchmark::State& state) {
  bool hybrid = state.range(1) == 1;
  std::vector<wn::ValueId> ids = DensityIds(state.range(0), 42);
  for (auto _ : state) {
    if (hybrid) {
      wn::HybridBitmap h = wn::HybridBitmap::FromSorted(ids, kUniverseBits);
      benchmark::DoNotOptimize(h.Count());
    } else {
      wn::DenseBitmap d(ids, static_cast<int32_t>(kUniverseBits));
      benchmark::DoNotOptimize(d.num_words());
    }
  }
  ReportContainerSize(state, wn::HybridBitmap::FromSorted(ids, kUniverseBits),
                      hybrid);
  state.SetLabel(hybrid ? "hybrid" : "dense");
}
BENCHMARK(BM_ContainerBuild)
    ->ArgsProduct({{1, 10, 100, 500, 900}, {0, 1}});

// --- Contains probes -------------------------------------------------------

void BM_ContainerContains(benchmark::State& state) {
  bool hybrid = state.range(1) == 1;
  std::vector<wn::ValueId> ids = DensityIds(state.range(0), 42);
  wn::HybridBitmap h = wn::HybridBitmap::FromSorted(ids, kUniverseBits);
  wn::DenseBitmap d(ids, static_cast<int32_t>(kUniverseBits));
  // A fixed probe sequence mixing hits and misses, reused every iteration.
  wn::workload::Rng rng(7);
  std::vector<wn::ValueId> probes(4096);
  for (wn::ValueId& p : probes) {
    p = static_cast<wn::ValueId>(
        rng.Below(static_cast<uint64_t>(kUniverseBits)));
  }
  for (auto _ : state) {
    size_t hits = 0;
    for (wn::ValueId p : probes) {
      hits += hybrid ? h.Test(p) : d.Test(p);
    }
    benchmark::DoNotOptimize(hits);
  }
  ReportContainerSize(state, h, hybrid);
  state.SetLabel(hybrid ? "hybrid" : "dense");
}
BENCHMARK(BM_ContainerContains)
    ->ArgsProduct({{1, 10, 100, 500, 900}, {0, 1}});

// --- fused AndCount --------------------------------------------------------

void BM_ContainerAndCount(benchmark::State& state) {
  bool hybrid = state.range(1) == 1;
  std::vector<wn::ValueId> a_ids = DensityIds(state.range(0), 42);
  std::vector<wn::ValueId> b_ids = DensityIds(state.range(0), 1042);
  wn::HybridBitmap ha = wn::HybridBitmap::FromSorted(a_ids, kUniverseBits);
  wn::HybridBitmap hb = wn::HybridBitmap::FromSorted(b_ids, kUniverseBits);
  wn::DenseBitmap da(a_ids, static_cast<int32_t>(kUniverseBits));
  wn::DenseBitmap db(b_ids, static_cast<int32_t>(kUniverseBits));
  for (auto _ : state) {
    size_t n = hybrid ? wn::HybridBitmap::AndCount(ha, hb)
                      : wn::DenseBitmap::AndCountWords(da.words().data(),
                                                      db.words().data(),
                                                      da.num_words());
    benchmark::DoNotOptimize(n);
  }
  ReportContainerSize(state, ha, hybrid);
  state.SetLabel(hybrid ? "hybrid" : "dense");
}
BENCHMARK(BM_ContainerAndCount)
    ->ArgsProduct({{1, 10, 100, 500, 900}, {0, 1}});

// --- warm-session residency ------------------------------------------------

void ReportSessionMemory(benchmark::State& state,
                         const std::vector<wn::explain::ExplainSession>&
                             sessions) {
  double total = 0, dense_total = 0, adaptive = 0, adaptive_dense = 0;
  double ext = 0, cover = 0;
  double hybrid_sets = 0, dense_sets = 0;
  for (const wn::explain::ExplainSession& s : sessions) {
    auto m = s.MemoryUsage();
    total += static_cast<double>(m.total_bytes);
    dense_total += static_cast<double>(m.dense_equivalent_total_bytes);
    // The sets the container layer converts; instance storage and eval
    // memos are byte-identical under both policies and only dilute the
    // ratio.
    adaptive += static_cast<double>(m.ext_bytes + m.cover_bytes);
    adaptive_dense += static_cast<double>(m.dense_equivalent_total_bytes -
                                          m.instance_bytes -
                                          m.eval_cache_bytes);
    ext += static_cast<double>(m.ext_bytes);
    cover += static_cast<double>(m.cover_bytes);
    hybrid_sets += static_cast<double>(m.hybrid_ext_sets);
    dense_sets += static_cast<double>(m.dense_ext_sets);
  }
  state.counters["memory_bytes"] = total;
  state.counters["dense_memory_bytes"] = dense_total;
  state.counters["adaptive_memory_bytes"] = adaptive;
  state.counters["adaptive_dense_bytes"] = adaptive_dense;
  state.counters["ext_bytes"] = ext;
  state.counters["cover_bytes"] = cover;
  state.counters["hybrid_sets"] = hybrid_sets;
  state.counters["dense_sets"] = dense_sets;
  state.counters["sessions"] = static_cast<double>(sessions.size());
}

constexpr size_t kResidentSessions = 4;

void BM_SessionResidency_Retail(benchmark::State& state) {
  auto scenario =
      wn::workload::MakeRetailScenario(static_cast<int>(state.range(0)), 16);
  if (!scenario.ok()) {
    state.SkipWithError("fixture");
    return;
  }
  std::vector<wn::explain::ExplainSession> sessions;
  for (size_t i = 0; i < kResidentSessions; ++i) {
    auto s = wn::explain::ExplainSession::Bind(scenario->instance.get(),
                                               scenario->stock_query,
                                               scenario->ontology.get());
    if (!s.ok()) {
      state.SkipWithError(s.status().ToString().c_str());
      return;
    }
    sessions.push_back(std::move(s).value());
  }
  size_t i = 0;
  for (auto _ : state) {
    auto e = sessions[i++ % sessions.size()].WhyNot(scenario->missing);
    if (!e.ok()) {
      state.SkipWithError(e.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(e.value().size());
  }
  ReportSessionMemory(state, sessions);
}
BENCHMARK(BM_SessionResidency_Retail)->Arg(16)->Arg(64);

/// Deep-lattice residency: a layered ontology over a large interned
/// domain with an aggressive per-level thinning rate, so everything below
/// the first level is sparse relative to the 60k-value universe — the
/// regime the hybrid freeze targets. The pinned request values keep every
/// concept a live explanation candidate despite the thinning.
struct LatticeFixture {
  wn::rel::Schema schema;
  std::unique_ptr<wn::rel::Instance> instance;
  std::unique_ptr<wn::onto::ExplicitOntology> ontology;
  wn::Tuple missing;
  std::vector<wn::Tuple> answers;
};

// Heap-allocated and filled in place: the instance (and later the bound
// sessions) hold the schema's address, so the fixture must never move.
std::unique_ptr<LatticeFixture> MakeLatticeFixture(int depth, uint64_t seed) {
  auto f = std::make_unique<LatticeFixture>();
  auto schema = wn::workload::RandomSchema(1, {2});
  if (!schema.ok()) return nullptr;
  f->schema = std::move(schema).value();
  f->instance = std::make_unique<wn::rel::Instance>(&f->schema);

  constexpr int kDomain = 120000;
  std::vector<wn::Value> domain;
  domain.reserve(kDomain);
  for (int i = 0; i < kDomain; ++i) domain.push_back(wn::Value(i));
  f->missing = {domain[1], domain[2]};
  std::vector<wn::Value> pinned = {domain[1], domain[2]};

  wn::workload::LatticeOntologyOptions opts;
  opts.depth = depth;
  opts.width = 12;
  opts.keep_num = 1;  // 1/16 survival per level: sparse from level 2 down
  opts.keep_den = 16;
  auto ontology =
      wn::workload::RandomLatticeOntology(domain, pinned, opts, seed);
  if (!ontology.ok()) return nullptr;
  f->ontology = std::move(ontology).value();

  wn::workload::Rng rng(seed ^ 0xdeadbeefull);
  for (int a = 0; a < 64; ++a) {
    wn::Tuple t = {domain[rng.Below(kDomain)], domain[rng.Below(kDomain)]};
    if (t != f->missing) f->answers.push_back(std::move(t));
  }
  return f;
}

void BM_SessionResidency_DeepLattice(benchmark::State& state) {
  auto f = MakeLatticeFixture(static_cast<int>(state.range(0)), 1234);
  if (f == nullptr) {
    state.SkipWithError("fixture");
    return;
  }
  std::vector<wn::explain::ExplainSession> sessions;
  for (size_t i = 0; i < kResidentSessions; ++i) {
    auto s = wn::explain::ExplainSession::BindWithAnswers(
        f->instance.get(), f->answers, f->ontology.get());
    if (!s.ok()) {
      state.SkipWithError(s.status().ToString().c_str());
      return;
    }
    sessions.push_back(std::move(s).value());
  }
  size_t i = 0;
  for (auto _ : state) {
    auto mges = sessions[i++ % sessions.size()].PrunedMges(f->missing);
    if (!mges.ok()) {
      state.SkipWithError(mges.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(mges.value().size());
  }
  ReportSessionMemory(state, sessions);
  state.counters["concepts"] =
      static_cast<double>(f->ontology->NumConcepts());
}
BENCHMARK(BM_SessionResidency_DeepLattice)->Arg(16)->Arg(24);

}  // namespace
