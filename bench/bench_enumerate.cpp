// Experiment E23 (DESIGN.md): Section 7 poses the existence of a
// polynomial-delay algorithm enumerating *all* most-general explanations
// w.r.t. OI (selection-free LS) as an open problem. This benchmark
// measures the exclusion-branching enumerator: total time, number of MGEs,
// branch-tree nodes per reported MGE, and the maximum node gap between
// consecutive outputs (`max_delay` — the empirical delay).
//
// It also runs the duplicate-pruning heuristic as an ablation: pruning
// duplicate-output nodes collapses the node count by orders of magnitude
// but *loses MGEs on real inputs* (`mges_missed` > 0 on several seeds),
// demonstrating why the completeness guarantee needs the full tree — and
// why the paper's open problem is open.

#include <benchmark/benchmark.h>

#include "whynot/whynot.h"

namespace wn = whynot;

namespace {

struct Fixture {
  wn::rel::Schema schema;
  std::unique_ptr<wn::rel::Instance> instance;
  wn::explain::WhyNotInstance wni;
};

// A random 3-relation instance with a base-relation query; the missing
// tuple is the first non-answer pair of the active domain.
std::unique_ptr<Fixture> MakeRandomFixture(int rows, int domain,
                                           uint64_t seed) {
  auto schema = wn::workload::RandomSchema(3, {2, 2, 1});
  if (!schema.ok()) return nullptr;
  auto f = std::make_unique<Fixture>();
  f->schema = std::move(schema).value();
  auto instance = wn::workload::RandomInstance(&f->schema, rows, domain, seed);
  if (!instance.ok()) return nullptr;
  f->instance =
      std::make_unique<wn::rel::Instance>(std::move(instance).value());

  wn::rel::ConjunctiveQuery cq;
  cq.head = {"x", "y"};
  wn::rel::Atom a;
  a.relation = "R0";
  a.args = {wn::rel::Term::Var("x"), wn::rel::Term::Var("y")};
  cq.atoms = {a};
  wn::rel::UnionQuery q;
  q.disjuncts = {cq};

  wn::Tuple missing = {wn::Value(domain + 100), wn::Value(domain + 101)};
  for (int64_t x = 0; x < domain; ++x) {
    for (int64_t y = 0; y < domain; ++y) {
      if (!f->instance->Contains("R0", {wn::Value(x), wn::Value(y)})) {
        missing = {wn::Value(x), wn::Value(y)};
        x = domain;
        break;
      }
    }
  }
  auto wni = wn::explain::MakeWhyNotInstance(f->instance.get(), q, missing);
  if (!wni.ok()) return nullptr;
  f->wni = std::move(wni).value();
  return f;
}

// Instance-size sweep: delay statistics of the complete enumerator.
void BM_Enumerate_InstanceSizeSweep(benchmark::State& state) {
  auto f = MakeRandomFixture(static_cast<int>(state.range(0)),
                             /*domain=*/8, /*seed=*/7);
  if (f == nullptr) {
    state.SkipWithError("fixture");
    return;
  }
  wn::explain::EnumerateStats stats;
  size_t num_results = 0;
  for (auto _ : state) {
    auto r = wn::explain::EnumerateAllMges(f->wni, {}, &stats);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    num_results = r.value().size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["facts"] = static_cast<double>(f->instance->NumFacts());
  state.counters["mges"] = static_cast<double>(num_results);
  state.counters["nodes"] = static_cast<double>(stats.nodes_expanded);
  state.counters["nodes_per_mge"] =
      num_results == 0 ? 0.0
                       : static_cast<double>(stats.nodes_expanded) /
                             static_cast<double>(num_results);
  state.counters["max_delay"] = static_cast<double>(stats.max_delay);
}
BENCHMARK(BM_Enumerate_InstanceSizeSweep)->RangeMultiplier(2)->Range(5, 40);

// Ablation: completeness guarantee (expand duplicate-output nodes) vs. the
// duplicate-pruning heuristic. arg0 = seed; reports the MGEs the heuristic
// misses on the same input.
void BM_Enumerate_DuplicatePruningAblation(benchmark::State& state) {
  auto f = MakeRandomFixture(/*rows=*/10, /*domain=*/8,
                             static_cast<uint64_t>(state.range(0)));
  if (f == nullptr) {
    state.SkipWithError("fixture");
    return;
  }
  wn::explain::EnumerateOptions heuristic;
  heuristic.expand_duplicate_nodes = false;
  wn::explain::EnumerateStats full_stats;
  wn::explain::EnumerateStats heur_stats;
  size_t full_count = 0;
  size_t heur_count = 0;
  for (auto _ : state) {
    auto full = wn::explain::EnumerateAllMges(f->wni, {}, &full_stats);
    auto heur =
        wn::explain::EnumerateAllMges(f->wni, heuristic, &heur_stats);
    if (!full.ok() || !heur.ok()) {
      state.SkipWithError("enumeration failed");
      return;
    }
    full_count = full.value().size();
    heur_count = heur.value().size();
    benchmark::DoNotOptimize(full);
    benchmark::DoNotOptimize(heur);
  }
  state.counters["mges"] = static_cast<double>(full_count);
  state.counters["mges_missed"] =
      static_cast<double>(full_count - heur_count);
  state.counters["nodes_full"] = static_cast<double>(full_stats.nodes_expanded);
  state.counters["nodes_heuristic"] =
      static_cast<double>(heur_stats.nodes_expanded);
}
BENCHMARK(BM_Enumerate_DuplicatePruningAblation)->DenseRange(1, 5, 1);

// The Figures 1-2 travel world (Examples 3.4/4.9 input).
void BM_Enumerate_CitiesWorld(benchmark::State& state) {
  auto schema = wn::workload::CitiesDataSchema();
  if (!schema.ok()) {
    state.SkipWithError("schema");
    return;
  }
  auto schema_v = std::move(schema).value();
  auto instance = wn::workload::CitiesInstance(&schema_v);
  if (!instance.ok()) {
    state.SkipWithError("instance");
    return;
  }
  auto instance_v = std::move(instance).value();
  auto wni = wn::explain::MakeWhyNotInstance(
      &instance_v, wn::workload::ConnectedViaQuery(),
      {wn::Value("Amsterdam"), wn::Value("New York")});
  if (!wni.ok()) {
    state.SkipWithError("wni");
    return;
  }
  wn::explain::EnumerateStats stats;
  size_t num_results = 0;
  for (auto _ : state) {
    auto r = wn::explain::EnumerateAllMges(wni.value(), {}, &stats);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    num_results = r.value().size();
    benchmark::DoNotOptimize(r);
  }
  state.counters["mges"] = static_cast<double>(num_results);
  state.counters["nodes"] = static_cast<double>(stats.nodes_expanded);
}
BENCHMARK(BM_Enumerate_CitiesWorld);

// Baseline: one greedy completion (Algorithm 2) on the same random input —
// the per-output lower bound for any enumeration built on greedy
// completions.
void BM_Enumerate_SingleMgeBaseline(benchmark::State& state) {
  auto f = MakeRandomFixture(static_cast<int>(state.range(0)),
                             /*domain=*/8, /*seed=*/7);
  if (f == nullptr) {
    state.SkipWithError("fixture");
    return;
  }
  for (auto _ : state) {
    auto r = wn::explain::IncrementalSearch(f->wni);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r);
  }
  state.counters["facts"] = static_cast<double>(f->instance->NumFacts());
}
BENCHMARK(BM_Enumerate_SingleMgeBaseline)->RangeMultiplier(2)->Range(5, 40);

}  // namespace
