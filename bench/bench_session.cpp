// PR 5: prepared-session serving benchmarks. The repeated-traffic
// scenario the ROADMAP targets: one (ontology, instance, query) binding
// answering a stream of why-not requests. Cold rows pay the full one-shot
// path per request — query evaluation, extension warm-up, answer-cover
// construction, lub canonical boxes — while the warm rows reuse an
// ExplainSession's shared state and only run the per-request search.
// Results are bit-identical (see tests/session_test.cc); the gap is the
// per-request cost the session amortizes.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "whynot/common/exec_control.h"
#include "whynot/whynot.h"

namespace wn = whynot;

namespace {

struct Fixture {
  wn::workload::RetailScenario scenario;
  std::vector<wn::Tuple> requests;  // missing tuples, rotated per request
};

/// Builds the scaled retail scenario plus a rotation of distinct missing
/// (product, store) requests, so warm rows cannot degenerate into serving
/// one memoized answer.
std::optional<Fixture> MakeFixture(int num_products, int num_stores,
                                   size_t num_requests) {
  auto scenario = wn::workload::MakeRetailScenario(num_products, num_stores);
  if (!scenario.ok()) return std::nullopt;
  Fixture f;
  f.scenario = std::move(scenario).value();
  auto answers =
      wn::rel::Evaluate(f.scenario.stock_query, *f.scenario.instance);
  if (!answers.ok()) return std::nullopt;
  const auto& products = f.scenario.instance->Relation("Products");
  const auto& stores = f.scenario.instance->Relation("Stores");
  for (const wn::Tuple& p : products) {
    for (const wn::Tuple& s : stores) {
      wn::Tuple missing = {p[0], s[0]};
      if (!std::binary_search(answers->begin(), answers->end(), missing)) {
        f.requests.push_back(std::move(missing));
        if (f.requests.size() >= num_requests) return f;
      }
    }
  }
  return f.requests.empty() ? std::nullopt : std::optional<Fixture>(std::move(f));
}

// --- External ontology: Algorithm 1 per request ----------------------------

void BM_ColdOneShot_ExhaustiveMges(benchmark::State& state) {
  auto f = MakeFixture(static_cast<int>(state.range(0)), 4, 8);
  if (!f.has_value()) {
    state.SkipWithError("fixture");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    // The full cold path a stateless server would pay per request.
    auto wni = wn::explain::MakeWhyNotInstance(
        f->scenario.instance.get(), f->scenario.stock_query,
        f->requests[i++ % f->requests.size()]);
    if (!wni.ok()) {
      state.SkipWithError(wni.status().ToString().c_str());
      return;
    }
    wn::onto::BoundOntology bound(f->scenario.ontology.get(),
                                  f->scenario.instance.get());
    auto mges = wn::explain::ExhaustiveSearchAllMge(&bound, wni.value());
    if (!mges.ok()) {
      state.SkipWithError(mges.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(mges.value().size());
  }
  state.counters["requests"] = static_cast<double>(f->requests.size());
}
BENCHMARK(BM_ColdOneShot_ExhaustiveMges)->RangeMultiplier(2)->Range(4, 16);

void BM_WarmSession_ExhaustiveMges(benchmark::State& state) {
  auto f = MakeFixture(static_cast<int>(state.range(0)), 4, 8);
  if (!f.has_value()) {
    state.SkipWithError("fixture");
    return;
  }
  auto session = wn::explain::ExplainSession::Bind(
      f->scenario.instance.get(), f->scenario.stock_query,
      f->scenario.ontology.get());
  if (!session.ok()) {
    state.SkipWithError(session.status().ToString().c_str());
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    auto mges = session->ExhaustiveMges(f->requests[i++ % f->requests.size()]);
    if (!mges.ok()) {
      state.SkipWithError(mges.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(mges.value().size());
  }
  state.counters["requests"] = static_cast<double>(f->requests.size());
}
BENCHMARK(BM_WarmSession_ExhaustiveMges)->RangeMultiplier(2)->Range(4, 16);

// --- Derived ontology OI: Algorithm 2 per request --------------------------

void BM_ColdOneShot_WhyNotDerived(benchmark::State& state) {
  auto f = MakeFixture(static_cast<int>(state.range(0)), 4, 8);
  if (!f.has_value()) {
    state.SkipWithError("fixture");
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    auto wni = wn::explain::MakeWhyNotInstance(
        f->scenario.instance.get(), f->scenario.stock_query,
        f->requests[i++ % f->requests.size()]);
    if (!wni.ok()) {
      state.SkipWithError(wni.status().ToString().c_str());
      return;
    }
    auto e = wn::explain::IncrementalSearch(wni.value(), {});
    if (!e.ok()) {
      state.SkipWithError(e.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(e.value().size());
  }
}
BENCHMARK(BM_ColdOneShot_WhyNotDerived)->RangeMultiplier(2)->Range(4, 16);

void BM_WarmSession_WhyNotDerived(benchmark::State& state) {
  auto f = MakeFixture(static_cast<int>(state.range(0)), 4, 8);
  if (!f.has_value()) {
    state.SkipWithError("fixture");
    return;
  }
  auto session = wn::explain::ExplainSession::Bind(
      f->scenario.instance.get(), f->scenario.stock_query);
  if (!session.ok()) {
    state.SkipWithError(session.status().ToString().c_str());
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    auto e = session->WhyNot(f->requests[i++ % f->requests.size()]);
    if (!e.ok()) {
      state.SkipWithError(e.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(e.value().size());
  }
}
BENCHMARK(BM_WarmSession_WhyNotDerived)->RangeMultiplier(2)->Range(4, 16);

// --- Bind + invalidation costs --------------------------------------------

void BM_SessionBind(benchmark::State& state) {
  auto f = MakeFixture(static_cast<int>(state.range(0)), 4, 1);
  if (!f.has_value()) {
    state.SkipWithError("fixture");
    return;
  }
  for (auto _ : state) {
    auto session = wn::explain::ExplainSession::Bind(
        f->scenario.instance.get(), f->scenario.stock_query,
        f->scenario.ontology.get());
    if (!session.ok()) {
      state.SkipWithError(session.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(session->answers().size());
  }
}
BENCHMARK(BM_SessionBind)->RangeMultiplier(2)->Range(4, 16);

void BM_SessionInvalidationRewarm(benchmark::State& state) {
  auto f = MakeFixture(static_cast<int>(state.range(0)), 4, 2);
  if (!f.has_value() || f->requests.size() < 2) {
    state.SkipWithError("fixture");
    return;
  }
  // A private mutable copy: each iteration adds a fresh fact (bumping the
  // version) and the next request pays one deterministic rewarm.
  wn::rel::Instance instance(*f->scenario.instance);
  auto session = wn::explain::ExplainSession::Bind(
      &instance, f->scenario.stock_query, f->scenario.ontology.get());
  if (!session.ok()) {
    state.SkipWithError(session.status().ToString().c_str());
    return;
  }
  int64_t next_id = 0;
  for (auto _ : state) {
    wn::Status st = instance.AddFact(
        "Products", {wn::Value("P-hot-" + std::to_string(next_id)),
                     wn::Value("Bluetooth-Headset")});
    ++next_id;
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
    auto e = session->WhyNot(f->requests[0]);
    if (!e.ok()) {
      state.SkipWithError(e.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(e.value().size());
  }
}
BENCHMARK(BM_SessionInvalidationRewarm)->RangeMultiplier(4)->Range(4, 16);

// --- PR 8: execution-control deadline sweep --------------------------------

// MgesWithDegradation under a per-request wall-clock deadline, swept from
// none (0: the uninterrupted overhead row — every probe active, nothing
// fires) down to budgets a request may genuinely blow through. Whether a
// given row degrades depends on the host, so the exact/heuristic split is
// exported as counters rather than assumed; the explanations counter shows
// the degraded rows still return usable partials.
void BM_DeadlineSweep_MgesWithDegradation(benchmark::State& state) {
  auto f = MakeFixture(32, 6, 8);
  if (!f.has_value()) {
    state.SkipWithError("fixture");
    return;
  }
  auto session = wn::explain::ExplainSession::Bind(
      f->scenario.instance.get(), f->scenario.stock_query,
      f->scenario.ontology.get());
  if (!session.ok()) {
    state.SkipWithError(session.status().ToString().c_str());
    return;
  }
  const int64_t deadline_ms = state.range(0);
  size_t i = 0;
  double exact = 0, heuristic = 0, explanations = 0, total = 0;
  for (auto _ : state) {
    wn::exec::ExecContext ctx;
    if (deadline_ms > 0) {
      ctx.deadline = wn::exec::Deadline::After(deadline_ms);
    }
    auto graded = session->MgesWithDegradation(
        f->requests[i++ % f->requests.size()], &ctx);
    if (!graded.ok()) {
      state.SkipWithError(graded.status().ToString().c_str());
      return;
    }
    total += 1;
    if (graded->certificate.quality == wn::exec::Quality::kExact) exact += 1;
    if (graded->certificate.quality == wn::exec::Quality::kHeuristic) {
      heuristic += 1;
    }
    explanations += static_cast<double>(graded->explanations.size());
    benchmark::DoNotOptimize(graded->explanations.size());
  }
  state.counters["exact_frac"] = total > 0 ? exact / total : 0;
  state.counters["heuristic_frac"] = total > 0 ? heuristic / total : 0;
  state.counters["explanations"] =
      benchmark::Counter(explanations, benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_DeadlineSweep_MgesWithDegradation)
    ->Arg(0)
    ->Arg(1)
    ->Arg(4)
    ->Arg(16);

// Deterministic interruption-depth sweep: an injected deadline fires once
// the search's serial probe ordinal reaches the trigger, independent of
// host speed, so each row measures the cost of stopping at that depth plus
// the greedy-fallback rung when the truncated prefix is empty. Trigger 0
// stops before any candidate (pure fallback cost); the deepest row runs
// most of the space first.
void BM_InjectedStopSweep_MgesWithDegradation(benchmark::State& state) {
  auto f = MakeFixture(32, 6, 8);
  if (!f.has_value()) {
    state.SkipWithError("fixture");
    return;
  }
  auto session = wn::explain::ExplainSession::Bind(
      f->scenario.instance.get(), f->scenario.stock_query,
      f->scenario.ontology.get());
  if (!session.ok()) {
    state.SkipWithError(session.status().ToString().c_str());
    return;
  }
  const size_t trigger = static_cast<size_t>(state.range(0));
  size_t i = 0;
  double explanations = 0, tested = 0, total = 0;
  for (auto _ : state) {
    wn::test::FaultInjector inj = wn::test::FaultInjector::DeadlineAt(trigger);
    wn::exec::ExecContext ctx;
    ctx.fault = &inj;
    auto graded = session->MgesWithDegradation(
        f->requests[i++ % f->requests.size()], &ctx);
    if (!graded.ok()) {
      state.SkipWithError(graded.status().ToString().c_str());
      return;
    }
    total += 1;
    tested += static_cast<double>(graded->certificate.progress.tested);
    explanations += static_cast<double>(graded->explanations.size());
    benchmark::DoNotOptimize(graded->certificate.progress.tested);
  }
  state.counters["explanations"] =
      benchmark::Counter(explanations, benchmark::Counter::kAvgIterations);
  state.counters["tested"] = total > 0 ? tested / total : 0;
}
BENCHMARK(BM_InjectedStopSweep_MgesWithDegradation)
    ->Arg(0)
    ->Arg(16)
    ->Arg(1 << 20);

// --- PR 10: repeated derived-request traffic -------------------------------

// The shared concept-cache target scenario: one warm session serves a
// stream of derived EnumerateMges requests over rotating missing tuples.
// Every request's search asks for lubs of support sets drawn from the
// same fixed (instance, answers) binding, so requests past the first
// mostly replay published cache entries instead of recomputing
// lub+eval pairs. Pure timing with parent-era APIs only, so the same
// source measures the parent tree for the baseline row.
void BM_WarmSession_RepeatedEnumerateDerived(benchmark::State& state) {
  auto f = MakeFixture(static_cast<int>(state.range(0)), 4, 8);
  if (!f.has_value()) {
    state.SkipWithError("fixture");
    return;
  }
  auto session = wn::explain::ExplainSession::Bind(
      f->scenario.instance.get(), f->scenario.stock_query);
  if (!session.ok()) {
    state.SkipWithError(session.status().ToString().c_str());
    return;
  }
  size_t i = 0;
  for (auto _ : state) {
    auto mges = session->EnumerateMges(f->requests[i++ % f->requests.size()]);
    if (!mges.ok()) {
      state.SkipWithError(mges.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(mges.value().size());
  }
  state.counters["requests"] = static_cast<double>(f->requests.size());
}
BENCHMARK(BM_WarmSession_RepeatedEnumerateDerived)
    ->RangeMultiplier(2)
    ->Range(4, 16);

// The CHECK-side of the same traffic: repeated CheckMgeDerived probes of a
// fixed candidate pool against rotating missing tuples. Each check's
// generalization sweep re-derives neighbour lubs of the candidate, which
// the shared cache serves across requests.
void BM_WarmSession_RepeatedCheckMgeDerived(benchmark::State& state) {
  auto f = MakeFixture(static_cast<int>(state.range(0)), 4, 8);
  if (!f.has_value()) {
    state.SkipWithError("fixture");
    return;
  }
  auto session = wn::explain::ExplainSession::Bind(
      f->scenario.instance.get(), f->scenario.stock_query);
  if (!session.ok()) {
    state.SkipWithError(session.status().ToString().c_str());
    return;
  }
  // One candidate per request, derived once up front (not timed).
  std::vector<wn::explain::LsExplanation> candidates;
  for (const wn::Tuple& missing : f->requests) {
    auto e = session->WhyNot(missing);
    if (!e.ok()) {
      state.SkipWithError(e.status().ToString().c_str());
      return;
    }
    candidates.push_back(std::move(e).value());
  }
  size_t i = 0;
  for (auto _ : state) {
    size_t r = i++ % f->requests.size();
    auto ok = session->CheckMgeDerived(f->requests[r], candidates[r]);
    if (!ok.ok()) {
      state.SkipWithError(ok.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(ok.value());
  }
}
BENCHMARK(BM_WarmSession_RepeatedCheckMgeDerived)
    ->RangeMultiplier(2)
    ->Range(4, 16);

}  // namespace
