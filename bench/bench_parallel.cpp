// PR 4: the parallel execution layer's warm-up benches. Measures the
// sharded BoundOntology extension warm-up, the pairwise consistency check,
// the row-parallel blocked Warshall closure, and the materialize
// extension-class dedup — the "embarrassingly parallel" costs outside the
// candidate searches. Thread count comes from WHYNOT_THREADS (the runner
// records both a pooled and a 1-thread row; on a single-core host the two
// coincide).

#include <benchmark/benchmark.h>

#include "whynot/whynot.h"

namespace wn = whynot;

namespace {

void BM_WarmExtensions(benchmark::State& state) {
  auto world = wn::workload::MakeScaledWorld(3, static_cast<int>(state.range(0)), 4);
  if (!world.ok()) {
    state.SkipWithError("fixture");
    return;
  }
  for (auto _ : state) {
    wn::onto::BoundOntology bound(world.value().ontology.get(),
                                  world.value().instance.get());
    bound.WarmExtensions();
    benchmark::DoNotOptimize(bound.NumConcepts());
  }
  state.counters["concepts"] = world.value().ontology->NumConcepts();
}
BENCHMARK(BM_WarmExtensions)->RangeMultiplier(2)->Range(8, 64);

void BM_CheckConsistent(benchmark::State& state) {
  auto world = wn::workload::MakeScaledWorld(3, static_cast<int>(state.range(0)), 4);
  if (!world.ok()) {
    state.SkipWithError("fixture");
    return;
  }
  for (auto _ : state) {
    wn::onto::BoundOntology bound(world.value().ontology.get(),
                                  world.value().instance.get());
    wn::Status st = bound.CheckConsistent();
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
}
BENCHMARK(BM_CheckConsistent)->RangeMultiplier(2)->Range(8, 32);

void BM_TransitiveClosure(benchmark::State& state) {
  int32_t n = static_cast<int32_t>(state.range(0));
  wn::workload::Rng rng(7);
  wn::onto::BoolMatrix edges(n);
  for (int32_t i = 0; i < 4 * n; ++i) {
    edges.Set(static_cast<int32_t>(rng.Below(static_cast<uint64_t>(n))),
              static_cast<int32_t>(rng.Below(static_cast<uint64_t>(n))));
  }
  for (auto _ : state) {
    wn::onto::BoolMatrix m = edges;
    wn::onto::ReflexiveTransitiveClosure(&m);
    benchmark::DoNotOptimize(m.RowCount(0));
  }
}
BENCHMARK(BM_TransitiveClosure)->RangeMultiplier(4)->Range(256, 4096);

void BM_MaterializeSelectionFree(benchmark::State& state) {
  auto schema = wn::workload::RandomSchema(3, {2, 2, 1});
  if (!schema.ok()) {
    state.SkipWithError("schema");
    return;
  }
  auto instance = wn::workload::RandomInstance(
      &schema.value(), static_cast<int>(state.range(0)), 12, 42);
  if (!instance.ok()) {
    state.SkipWithError("instance");
    return;
  }
  wn::ls::MaterializeOptions options;
  options.fragment = wn::ls::Fragment::kSelectionFree;
  options.max_concepts = 100000;
  for (auto _ : state) {
    auto onto =
        wn::ls::LsOntology::Materialize(&instance.value(), {}, options);
    if (!onto.ok()) {
      state.SkipWithError(onto.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(onto.value()->NumConcepts());
  }
}
BENCHMARK(BM_MaterializeSelectionFree)->RangeMultiplier(2)->Range(16, 64);

}  // namespace
