// Experiment E20 (DESIGN.md): Proposition 6.4 — computing a >card-maximal
// explanation admits no PTIME algorithm (nor a PTIME constant-factor
// approximation) unless P=NP. We compare the exponential exact enumeration
// against the greedy hill-climb on set-cover-shaped families and report the
// quality gap.
//
// Expected shape: exact time explodes with the cover bound while greedy
// stays flat; the counters expose exact vs greedy degrees (greedy ≤ exact,
// sometimes strictly).

#include <benchmark/benchmark.h>

#include "whynot/whynot.h"

namespace wn = whynot;

namespace {

std::unique_ptr<wn::explain::SetCoverWhyNot> MakeReduction(size_t bound_k,
                                                           uint64_t seed) {
  wn::explain::SetCoverInstance sc = wn::explain::RandomSetCover(
      /*universe=*/2 * bound_k + 2, /*num_sets=*/bound_k + 4,
      /*set_size=*/3, bound_k, seed);
  auto reduction = wn::explain::ReduceSetCoverToWhyNot(sc);
  if (!reduction.ok()) return nullptr;
  return std::move(reduction).value();
}

void BM_Cardinality_Exact(benchmark::State& state) {
  auto reduction = MakeReduction(static_cast<size_t>(state.range(0)), 23);
  if (reduction == nullptr) {
    state.SkipWithError("reduction");
    return;
  }
  wn::onto::BoundOntology bound(reduction->ontology.get(),
                                reduction->instance.get());
  wn::explain::ExhaustiveOptions options;
  options.max_candidates = 500000000;
  double degree = 0;
  for (auto _ : state) {
    auto r = wn::explain::ExactCardMaximal(&bound, reduction->wni, options);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    if (r->has_value()) degree = static_cast<double>((**r).degree.finite);
    benchmark::DoNotOptimize(r);
  }
  state.counters["cover_bound"] = static_cast<double>(state.range(0));
  state.counters["exact_degree"] = degree;
}
BENCHMARK(BM_Cardinality_Exact)->DenseRange(2, 6);

void BM_Cardinality_Greedy(benchmark::State& state) {
  auto reduction = MakeReduction(static_cast<size_t>(state.range(0)), 23);
  if (reduction == nullptr) {
    state.SkipWithError("reduction");
    return;
  }
  wn::onto::BoundOntology bound(reduction->ontology.get(),
                                reduction->instance.get());
  double degree = 0;
  bool found = true;
  for (auto _ : state) {
    auto r = wn::explain::GreedyCardinalityClimb(&bound, reduction->wni);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    found = r->has_value();
    if (found) degree = static_cast<double>((**r).degree.finite);
    benchmark::DoNotOptimize(r);
  }
  state.counters["cover_bound"] = static_cast<double>(state.range(0));
  state.counters["greedy_degree"] = degree;
  state.SetLabel(found ? "explanation found" : "no explanation");
}
BENCHMARK(BM_Cardinality_Greedy)->DenseRange(2, 6);

}  // namespace
