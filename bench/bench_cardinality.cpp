// Experiment E20 (DESIGN.md): Proposition 6.4 — computing a >card-maximal
// explanation admits no PTIME algorithm (nor a PTIME constant-factor
// approximation) unless P=NP. We compare the exponential exact enumeration
// against the greedy hill-climb on set-cover-shaped families and report the
// quality gap.
//
// Expected shape: exact time explodes with the cover bound while greedy
// stays flat; the counters expose exact vs greedy degrees (greedy ≤ exact,
// sometimes strictly).

#include <benchmark/benchmark.h>

#include "whynot/whynot.h"

namespace wn = whynot;

namespace {

std::unique_ptr<wn::explain::SetCoverWhyNot> MakeReduction(size_t bound_k,
                                                           uint64_t seed) {
  wn::explain::SetCoverInstance sc = wn::explain::RandomSetCover(
      /*universe=*/2 * bound_k + 2, /*num_sets=*/bound_k + 4,
      /*set_size=*/3, bound_k, seed);
  auto reduction = wn::explain::ReduceSetCoverToWhyNot(sc);
  if (!reduction.ok()) return nullptr;
  return std::move(reduction).value();
}

void BM_Cardinality_Exact(benchmark::State& state) {
  auto reduction = MakeReduction(static_cast<size_t>(state.range(0)), 23);
  if (reduction == nullptr) {
    state.SkipWithError("reduction");
    return;
  }
  wn::onto::BoundOntology bound(reduction->ontology.get(),
                                reduction->instance.get());
  wn::explain::ExhaustiveOptions options;
  options.max_candidates = 500000000;
  double degree = 0;
  for (auto _ : state) {
    auto r = wn::explain::ExactCardMaximal(&bound, reduction->wni, options);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    if (r->has_value()) degree = static_cast<double>((**r).degree.finite);
    benchmark::DoNotOptimize(r);
  }
  state.counters["cover_bound"] = static_cast<double>(state.range(0));
  state.counters["exact_degree"] = degree;
}
BENCHMARK(BM_Cardinality_Exact)->DenseRange(2, 6);

/// Deep-lattice exact cardinality: same layered multi-parent family as
/// BM_Exhaustive_DeepLattice (see bench_exhaustive.cpp), with the frontier
/// additionally branch-and-bounding on the degree. The raw product is
/// |concepts|^3 ≈ 10⁶–10⁷; the exact odometer enumeration would be
/// hopeless at the tracked budget, while the frontier completes exactly.
void BM_Cardinality_DeepLatticeExact(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  wn::rel::Schema schema;
  auto schema_or = wn::workload::RandomSchema(1, {2});
  if (!schema_or.ok()) {
    state.SkipWithError("schema");
    return;
  }
  schema = std::move(schema_or).value();
  wn::rel::Instance instance(&schema);
  std::vector<wn::Value> domain;
  for (int i = 0; i < 48; ++i) domain.push_back(wn::Value(i));
  wn::Tuple missing = {domain[1], domain[2], domain[3]};
  std::vector<wn::Value> pinned = {domain[1], domain[2], domain[3]};
  wn::workload::LatticeOntologyOptions opts;
  opts.depth = depth;
  opts.width = 8;
  auto ontology_or =
      wn::workload::RandomLatticeOntology(domain, pinned, opts, 1234);
  if (!ontology_or.ok()) {
    state.SkipWithError("ontology");
    return;
  }
  std::unique_ptr<wn::onto::ExplicitOntology> ontology =
      std::move(ontology_or).value();
  wn::onto::BoundOntology bound(ontology.get(), &instance);
  wn::workload::Rng rng(1234 ^ 0xdeadbeefull);
  std::vector<wn::Tuple> answers;
  for (int a = 0; a < 64; ++a) {
    wn::Tuple t = {domain[rng.Below(domain.size())],
                   domain[rng.Below(domain.size())],
                   domain[rng.Below(domain.size())]};
    if (t != missing) answers.push_back(std::move(t));
  }
  auto wni_or =
      wn::explain::MakeWhyNotInstanceFromAnswers(&instance, answers, missing);
  if (!wni_or.ok()) {
    state.SkipWithError("wni");
    return;
  }
  wn::explain::ExhaustiveOptions options;
  options.strategy = wn::explain::SearchStrategy::kLattice;
  options.max_candidates = 2000000;
  wn::explain::PruneStats stats;
  options.prune_stats = &stats;
  wn::explain::LatticeHandle lattice(&bound);
  double degree = 0;
  for (auto _ : state) {
    stats = {};
    auto r = wn::explain::ExactCardMaximal(&bound, wni_or.value(), options,
                                           nullptr, &lattice);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    if (r->has_value()) degree = static_cast<double>((**r).degree.finite);
    benchmark::DoNotOptimize(r);
  }
  double concepts = static_cast<double>(bound.NumConcepts());
  state.counters["raw_product"] = concepts * concepts * concepts;
  state.counters["prune_enumerated"] =
      static_cast<double>(stats.products_enumerated);
  state.counters["prune_skipped"] =
      static_cast<double>(stats.products_skipped);
  state.counters["prune_downset_hits"] =
      static_cast<double>(stats.downset_hits);
  state.counters["prune_waves"] = static_cast<double>(stats.waves);
  state.counters["exact_degree"] = degree;
}
BENCHMARK(BM_Cardinality_DeepLatticeExact)->Arg(12)->Arg(25);

void BM_Cardinality_Greedy(benchmark::State& state) {
  auto reduction = MakeReduction(static_cast<size_t>(state.range(0)), 23);
  if (reduction == nullptr) {
    state.SkipWithError("reduction");
    return;
  }
  wn::onto::BoundOntology bound(reduction->ontology.get(),
                                reduction->instance.get());
  double degree = 0;
  bool found = true;
  for (auto _ : state) {
    auto r = wn::explain::GreedyCardinalityClimb(&bound, reduction->wni);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    found = r->has_value();
    if (found) degree = static_cast<double>((**r).degree.finite);
    benchmark::DoNotOptimize(r);
  }
  state.counters["cover_bound"] = static_cast<double>(state.range(0));
  state.counters["greedy_degree"] = degree;
  state.SetLabel(found ? "explanation found" : "no explanation");
}
BENCHMARK(BM_Cardinality_Greedy)->DenseRange(2, 6);

}  // namespace
