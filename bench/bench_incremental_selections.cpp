// Experiment E17 (DESIGN.md): Theorem 5.4 and Lemma 5.2 — INCREMENTAL
// SEARCH WITH SELECTIONS is EXPTIME in general but PTIME for bounded schema
// arity; the cost driver is the canonical-box enumeration, exponential in
// the relation arity.
//
// Expected shape: at fixed arity, polynomial growth in the number of rows;
// at fixed rows, multiplicative growth per added attribute.

#include <benchmark/benchmark.h>

#include "whynot/whynot.h"

namespace wn = whynot;
namespace rel = whynot::rel;

namespace {

struct Fixture {
  std::unique_ptr<rel::Schema> schema;
  std::unique_ptr<rel::Instance> instance;
  wn::explain::WhyNotInstance wni;
};

/// A single relation of the given arity with `rows` rows over a small value
/// pool; the why-not question asks about a fresh pair.
std::unique_ptr<Fixture> MakeFixture(int arity, int rows, int domain) {
  auto f = std::make_unique<Fixture>();
  f->schema = std::make_unique<rel::Schema>();
  std::vector<std::string> attrs;
  for (int a = 0; a < arity; ++a) attrs.push_back("a" + std::to_string(a));
  if (!f->schema->AddRelation("R", attrs).ok()) return nullptr;
  auto instance = wn::workload::RandomInstance(f->schema.get(), rows, domain,
                                               /*seed=*/11);
  if (!instance.ok()) return nullptr;
  f->instance = std::make_unique<rel::Instance>(std::move(instance).value());
  std::vector<wn::Value> adom = f->instance->ActiveDomain();
  if (adom.size() < 4) return nullptr;
  std::vector<wn::Tuple> answers = {{adom[0], adom[1]}, {adom[2], adom[3]}};
  wn::Tuple missing = {adom[1], adom[2]};
  auto wni = wn::explain::MakeWhyNotInstanceFromAnswers(f->instance.get(),
                                                        answers, missing);
  if (!wni.ok()) return nullptr;
  f->wni = std::move(wni).value();
  return f;
}

void BM_IncrementalSelections_RowSweepFixedArity(benchmark::State& state) {
  auto f = MakeFixture(/*arity=*/2, static_cast<int>(state.range(0)),
                       /*domain=*/10);
  if (f == nullptr) {
    state.SkipWithError("fixture");
    return;
  }
  wn::explain::IncrementalOptions options;
  options.with_selections = true;
  for (auto _ : state) {
    // Fresh context per iteration: the box construction is the cost under
    // measurement (Lemma 5.2).
    wn::ls::LubContext ctx(f->instance.get(), options.lub);
    auto r = wn::explain::IncrementalSearch(f->wni, options, &ctx);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_IncrementalSelections_RowSweepFixedArity)
    ->RangeMultiplier(2)
    ->Range(8, 64);

void BM_IncrementalSelections_AritySweep(benchmark::State& state) {
  auto f = MakeFixture(static_cast<int>(state.range(0)), /*rows=*/10,
                       /*domain=*/6);
  if (f == nullptr) {
    state.SkipWithError("fixture");
    return;
  }
  wn::explain::IncrementalOptions options;
  options.with_selections = true;
  options.lub.max_boxes_per_relation = 100000000;
  size_t boxes = 0;
  for (auto _ : state) {
    wn::ls::LubContext ctx(f->instance.get(), options.lub);
    auto r = wn::explain::IncrementalSearch(f->wni, options, &ctx);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    boxes = ctx.NumBoxes("R");
    benchmark::DoNotOptimize(r);
  }
  state.counters["arity"] = static_cast<double>(state.range(0));
  state.counters["canonical_boxes"] = static_cast<double>(boxes);
}
BENCHMARK(BM_IncrementalSelections_AritySweep)->DenseRange(1, 4);

}  // namespace
