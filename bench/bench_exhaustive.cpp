// Experiment E15 (DESIGN.md): Theorem 5.2 — EXHAUSTIVE SEARCH (Algorithm 1)
// runs in PTIME for fixed query arity and EXPTIME in general, plus the
// naive-vs-pruned antichain-maintenance ablation.
//
// Expected shape: near-linear growth in the ontology size at arity 2;
// multiplicative blowup as the arity grows at fixed ontology size; the
// pruned variant dominates the naive one as the explanation count rises.

#include <benchmark/benchmark.h>

#include "whynot/whynot.h"

namespace wn = whynot;

namespace {

struct Fixture {
  wn::workload::ScaledWorld world;
  std::unique_ptr<wn::onto::BoundOntology> bound;
  wn::explain::WhyNotInstance wni;
};

/// Ontology size is driven by countries-per-continent.
std::unique_ptr<Fixture> MakeFixture(int countries, size_t arity) {
  auto world = wn::workload::MakeScaledWorld(3, countries, 4);
  if (!world.ok()) return nullptr;
  auto f = std::make_unique<Fixture>();
  f->world = std::move(world).value();
  f->bound = std::make_unique<wn::onto::BoundOntology>(
      f->world.ontology.get(), f->world.instance.get());
  // Build an arity-m why-not question: alternate the two continents'
  // cities in the missing tuple; answers are same-city diagonals.
  wn::Tuple missing;
  for (size_t i = 0; i < arity; ++i) {
    missing.push_back(f->world.missing_pair[i % 2]);
  }
  std::vector<wn::Tuple> answers;
  std::vector<wn::Value> adom = f->world.instance->ActiveDomain();
  for (size_t i = 0; i < adom.size(); i += 3) {
    answers.push_back(wn::Tuple(arity, adom[i]));
  }
  auto wni = wn::explain::MakeWhyNotInstanceFromAnswers(
      f->world.instance.get(), answers, missing);
  if (!wni.ok()) return nullptr;
  f->wni = std::move(wni).value();
  return f;
}

void BM_Exhaustive_OntologySizeFixedArity(benchmark::State& state) {
  auto f = MakeFixture(static_cast<int>(state.range(0)), 2);
  if (f == nullptr) {
    state.SkipWithError("fixture");
    return;
  }
  for (auto _ : state) {
    auto r = wn::explain::ExhaustiveSearchAllMge(f->bound.get(), f->wni);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["concepts"] = f->bound->NumConcepts();
}
BENCHMARK(BM_Exhaustive_OntologySizeFixedArity)
    ->RangeMultiplier(2)
    ->Range(2, 32);

void BM_Exhaustive_AritySweep(benchmark::State& state) {
  auto f = MakeFixture(3, static_cast<size_t>(state.range(0)));
  if (f == nullptr) {
    state.SkipWithError("fixture");
    return;
  }
  wn::explain::ExhaustiveOptions options;
  options.max_candidates = 200000000;
  for (auto _ : state) {
    auto r =
        wn::explain::ExhaustiveSearchAllMge(f->bound.get(), f->wni, options);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["arity"] = static_cast<double>(state.range(0));
  state.counters["concepts"] = f->bound->NumConcepts();
}
BENCHMARK(BM_Exhaustive_AritySweep)->DenseRange(1, 4);

void BM_Exhaustive_PrunedAblation(benchmark::State& state) {
  auto f = MakeFixture(8, 2);
  if (f == nullptr) {
    state.SkipWithError("fixture");
    return;
  }
  bool pruned = state.range(0) == 1;
  for (auto _ : state) {
    auto r = pruned
                 ? wn::explain::PrunedSearchAllMge(f->bound.get(), f->wni)
                 : wn::explain::ExhaustiveSearchAllMge(f->bound.get(), f->wni);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(pruned ? "pruned" : "naive");
}
BENCHMARK(BM_Exhaustive_PrunedAblation)->Arg(0)->Arg(1);

}  // namespace
