// Experiment E15 (DESIGN.md): Theorem 5.2 — EXHAUSTIVE SEARCH (Algorithm 1)
// runs in PTIME for fixed query arity and EXPTIME in general, plus the
// naive-vs-pruned antichain-maintenance ablation.
//
// Expected shape: near-linear growth in the ontology size at arity 2;
// multiplicative blowup as the arity grows at fixed ontology size; the
// pruned variant dominates the naive one as the explanation count rises.

#include <benchmark/benchmark.h>

#include "whynot/whynot.h"

namespace wn = whynot;

namespace {

struct Fixture {
  wn::workload::ScaledWorld world;
  std::unique_ptr<wn::onto::BoundOntology> bound;
  wn::explain::WhyNotInstance wni;
};

/// Ontology size is driven by countries-per-continent.
std::unique_ptr<Fixture> MakeFixture(int countries, size_t arity) {
  auto world = wn::workload::MakeScaledWorld(3, countries, 4);
  if (!world.ok()) return nullptr;
  auto f = std::make_unique<Fixture>();
  f->world = std::move(world).value();
  f->bound = std::make_unique<wn::onto::BoundOntology>(
      f->world.ontology.get(), f->world.instance.get());
  // Build an arity-m why-not question: alternate the two continents'
  // cities in the missing tuple; answers are same-city diagonals.
  wn::Tuple missing;
  for (size_t i = 0; i < arity; ++i) {
    missing.push_back(f->world.missing_pair[i % 2]);
  }
  std::vector<wn::Tuple> answers;
  std::vector<wn::Value> adom = f->world.instance->ActiveDomain();
  for (size_t i = 0; i < adom.size(); i += 3) {
    answers.push_back(wn::Tuple(arity, adom[i]));
  }
  auto wni = wn::explain::MakeWhyNotInstanceFromAnswers(
      f->world.instance.get(), answers, missing);
  if (!wni.ok()) return nullptr;
  f->wni = std::move(wni).value();
  return f;
}

void BM_Exhaustive_OntologySizeFixedArity(benchmark::State& state) {
  auto f = MakeFixture(static_cast<int>(state.range(0)), 2);
  if (f == nullptr) {
    state.SkipWithError("fixture");
    return;
  }
  for (auto _ : state) {
    auto r = wn::explain::ExhaustiveSearchAllMge(f->bound.get(), f->wni);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["concepts"] = f->bound->NumConcepts();
}
BENCHMARK(BM_Exhaustive_OntologySizeFixedArity)
    ->RangeMultiplier(2)
    ->Range(2, 32);

void BM_Exhaustive_AritySweep(benchmark::State& state) {
  auto f = MakeFixture(3, static_cast<size_t>(state.range(0)));
  if (f == nullptr) {
    state.SkipWithError("fixture");
    return;
  }
  wn::explain::ExhaustiveOptions options;
  options.max_candidates = 200000000;
  for (auto _ : state) {
    auto r =
        wn::explain::ExhaustiveSearchAllMge(f->bound.get(), f->wni, options);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["arity"] = static_cast<double>(state.range(0));
  state.counters["concepts"] = f->bound->NumConcepts();
}
BENCHMARK(BM_Exhaustive_AritySweep)->DenseRange(1, 4);

/// Deep-lattice scenario: a layered multi-parent ontology whose every
/// concept contains the missing tuple's (pinned) values, so the raw
/// candidate product is |concepts|^arity — far past what the odometer can
/// enumerate — while the dominance-pruned frontier only ever tests the
/// boundary between failing and passing products.
struct DeepLatticeFixture {
  wn::rel::Schema schema;
  std::unique_ptr<wn::rel::Instance> instance;
  std::unique_ptr<wn::onto::ExplicitOntology> ontology;
  std::unique_ptr<wn::onto::BoundOntology> bound;
  wn::explain::WhyNotInstance wni;
};

std::unique_ptr<DeepLatticeFixture> MakeDeepLatticeFixture(int depth,
                                                           int width,
                                                           size_t arity,
                                                           uint64_t seed) {
  auto f = std::make_unique<DeepLatticeFixture>();
  auto schema = wn::workload::RandomSchema(1, {2});
  if (!schema.ok()) return nullptr;
  f->schema = std::move(schema).value();
  f->instance = std::make_unique<wn::rel::Instance>(&f->schema);

  std::vector<wn::Value> domain;
  for (int i = 0; i < 48; ++i) domain.push_back(wn::Value(i));
  wn::Tuple missing;
  std::vector<wn::Value> pinned;
  for (size_t i = 0; i < arity; ++i) {
    missing.push_back(domain[i + 1]);
    pinned.push_back(domain[i + 1]);
  }
  wn::workload::LatticeOntologyOptions opts;
  opts.depth = depth;
  opts.width = width;
  auto ontology =
      wn::workload::RandomLatticeOntology(domain, pinned, opts, seed);
  if (!ontology.ok()) return nullptr;
  f->ontology = std::move(ontology).value();
  f->bound = std::make_unique<wn::onto::BoundOntology>(f->ontology.get(),
                                                       f->instance.get());

  // Answers cluster in the upper half of the domain (the missing tuple's
  // pinned values sit at the bottom): concepts that happen to thin away
  // answer-heavy values pass high in the lattice, which is the regime the
  // downset pruning is built for — an MGE found near the top dominates
  // (and skips) its entire downset.
  wn::workload::Rng rng(seed ^ 0xdeadbeefull);
  std::vector<wn::Tuple> answers;
  for (int a = 0; a < 64; ++a) {
    wn::Tuple t;
    for (size_t i = 0; i < arity; ++i) {
      t.push_back(domain[24 + rng.Below(domain.size() - 24)]);
    }
    if (t != missing) answers.push_back(std::move(t));
  }
  auto wni = wn::explain::MakeWhyNotInstanceFromAnswers(f->instance.get(),
                                                        answers, missing);
  if (!wni.ok()) return nullptr;
  f->wni = std::move(wni).value();
  return f;
}

void ReportPruneCounters(benchmark::State& state,
                         const wn::explain::PruneStats& stats,
                         double raw_product) {
  state.counters["raw_product"] = raw_product;
  state.counters["prune_enumerated"] =
      static_cast<double>(stats.products_enumerated);
  state.counters["prune_skipped"] = static_cast<double>(stats.products_skipped);
  state.counters["prune_downset_hits"] =
      static_cast<double>(stats.downset_hits);
  state.counters["prune_waves"] = static_cast<double>(stats.waves);
}

void BM_Exhaustive_DeepLattice(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  auto f = MakeDeepLatticeFixture(depth, /*width=*/8, /*arity=*/3, 1234);
  if (f == nullptr) {
    state.SkipWithError("fixture");
    return;
  }
  wn::explain::ExhaustiveOptions options;
  options.strategy = wn::explain::SearchStrategy::kLattice;
  options.max_candidates = 2000000;  // budgets products *tested*
  wn::explain::PruneStats stats;
  options.prune_stats = &stats;
  wn::explain::LatticeHandle lattice(f->bound.get());
  size_t found = 0;
  for (auto _ : state) {
    stats = {};
    auto r = wn::explain::PrunedSearchAllMge(f->bound.get(), f->wni, options,
                                             nullptr, &lattice);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      break;
    }
    found = r->size();
    benchmark::DoNotOptimize(r);
  }
  double concepts = static_cast<double>(f->bound->NumConcepts());
  ReportPruneCounters(state, stats, concepts * concepts * concepts);
  state.counters["concepts"] = concepts;
  state.counters["mges"] = static_cast<double>(found);
}
BENCHMARK(BM_Exhaustive_DeepLattice)->Arg(12)->Arg(25);

void BM_Exhaustive_PrunedAblation(benchmark::State& state) {
  auto f = MakeFixture(8, 2);
  if (f == nullptr) {
    state.SkipWithError("fixture");
    return;
  }
  bool pruned = state.range(0) == 1;
  for (auto _ : state) {
    auto r = pruned
                 ? wn::explain::PrunedSearchAllMge(f->bound.get(), f->wni)
                 : wn::explain::ExhaustiveSearchAllMge(f->bound.get(), f->wni);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(pruned ? "pruned" : "naive");
}
BENCHMARK(BM_Exhaustive_PrunedAblation)->Arg(0)->Arg(1);

}  // namespace
