// Experiment E15 (DESIGN.md): Theorem 5.1.1 — CHECK-MGE is solvable in
// polynomial time, and Proposition 5.2 — CHECK-MGE w.r.t. OI is PTIME for
// selection-free LS.
//
// Expected shape: low-polynomial growth in both the ontology size (external
// case) and the instance size (derived case).

#include <benchmark/benchmark.h>

#include "whynot/whynot.h"

namespace wn = whynot;

namespace {

void BM_CheckMge_External(benchmark::State& state) {
  auto world =
      wn::workload::MakeScaledWorld(3, static_cast<int>(state.range(0)), 4);
  if (!world.ok()) {
    state.SkipWithError("world");
    return;
  }
  wn::onto::BoundOntology bound(world->ontology.get(), world->instance.get());
  auto wni = wn::explain::MakeWhyNotInstance(world->instance.get(),
                                             wn::workload::ConnectedViaQuery(),
                                             world->missing_pair);
  if (!wni.ok()) {
    state.SkipWithError("wni");
    return;
  }
  auto mges = wn::explain::ExhaustiveSearchAllMge(&bound, wni.value());
  if (!mges.ok() || mges->empty()) {
    state.SkipWithError("no MGE");
    return;
  }
  const wn::explain::Explanation& candidate = mges->front();
  for (auto _ : state) {
    auto r = wn::explain::CheckMgeExternal(&bound, wni.value(), candidate);
    if (!r.ok() || !r.value()) state.SkipWithError("check failed");
    benchmark::DoNotOptimize(r);
  }
  state.counters["concepts"] = bound.NumConcepts();
}
BENCHMARK(BM_CheckMge_External)->RangeMultiplier(2)->Range(2, 32);

void BM_CheckMge_DerivedSelectionFree(benchmark::State& state) {
  auto world =
      wn::workload::MakeScaledWorld(2, 2, static_cast<int>(state.range(0)));
  if (!world.ok()) {
    state.SkipWithError("world");
    return;
  }
  auto wni = wn::explain::MakeWhyNotInstance(world->instance.get(),
                                             wn::workload::ConnectedViaQuery(),
                                             world->missing_pair);
  if (!wni.ok()) {
    state.SkipWithError("wni");
    return;
  }
  wn::explain::IncrementalOptions options;
  auto mge = wn::explain::IncrementalSearch(wni.value(), options);
  if (!mge.ok()) {
    state.SkipWithError("incremental failed");
    return;
  }
  wn::ls::LubContext ctx(world->instance.get());
  for (auto _ : state) {
    auto r = wn::explain::CheckMgeDerived(wni.value(), mge.value(),
                                          /*with_selections=*/false, &ctx);
    if (!r.ok() || !r.value()) state.SkipWithError("check failed");
    benchmark::DoNotOptimize(r);
  }
  state.counters["facts"] = static_cast<double>(world->instance->NumFacts());
}
BENCHMARK(BM_CheckMge_DerivedSelectionFree)
    ->RangeMultiplier(2)
    ->Range(4, 32);

}  // namespace
