// PR 10: shared concept-evaluation cache traffic. The session-held
// ShardedPublishCache replaces the per-request lub/eval islands of the
// derived searches; these scenarios measure the reuse it buys and export
// the traffic counters (cache_shared_hits / cache_local_hits /
// cache_misses / cache_publishes) that tools/check_bench.py reports and
// gates on — a pooled warm-session row with zero shared hits means the
// publish-after-wave merge stopped feeding later requests.
//
// The counters are observability only: the shared/local split depends on
// the wave structure and thread count, while the served values (and all
// search output) stay bit-identical (tests/concept_cache_test.cc).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "whynot/whynot.h"

namespace wn = whynot;

namespace {

struct Fixture {
  wn::workload::RetailScenario scenario;
  std::vector<wn::Tuple> requests;
};

std::optional<Fixture> MakeFixture(int num_products, int num_stores,
                                   size_t num_requests) {
  auto scenario = wn::workload::MakeRetailScenario(num_products, num_stores);
  if (!scenario.ok()) return std::nullopt;
  Fixture f;
  f.scenario = std::move(scenario).value();
  auto answers =
      wn::rel::Evaluate(f.scenario.stock_query, *f.scenario.instance);
  if (!answers.ok()) return std::nullopt;
  const auto& products = f.scenario.instance->Relation("Products");
  const auto& stores = f.scenario.instance->Relation("Stores");
  for (const wn::Tuple& p : products) {
    for (const wn::Tuple& s : stores) {
      wn::Tuple missing = {p[0], s[0]};
      if (!std::binary_search(answers->begin(), answers->end(), missing)) {
        f.requests.push_back(std::move(missing));
        if (f.requests.size() >= num_requests) return f;
      }
    }
  }
  return f.requests.empty() ? std::nullopt
                            : std::optional<Fixture>(std::move(f));
}

void ExportCacheCounters(benchmark::State& state,
                         const wn::ls::ConceptCacheStats& before,
                         const wn::ls::ConceptCacheStats& after) {
  auto avg = [&](size_t b, size_t a) {
    return benchmark::Counter(static_cast<double>(a - b),
                              benchmark::Counter::kAvgIterations);
  };
  state.counters["cache_shared_hits"] =
      avg(before.shared_hits, after.shared_hits);
  state.counters["cache_local_hits"] = avg(before.local_hits, after.local_hits);
  state.counters["cache_misses"] = avg(before.misses, after.misses);
  state.counters["cache_publishes"] = avg(before.publishes, after.publishes);
}

// Warm session, repeated EnumerateAllMges traffic: after the first pass
// over the request rotation the published tier holds every lub the
// searches ask for, so steady-state misses go to ~0 and shared hits
// dominate. The exported counters are per-iteration deltas of the
// session's cumulative ConceptCacheStats.
void BM_ConceptCacheSession_EnumerateTraffic(benchmark::State& state) {
  auto f = MakeFixture(static_cast<int>(state.range(0)), 4, 8);
  if (!f.has_value()) {
    state.SkipWithError("fixture");
    return;
  }
  auto session = wn::explain::ExplainSession::Bind(
      f->scenario.instance.get(), f->scenario.stock_query);
  if (!session.ok()) {
    state.SkipWithError(session.status().ToString().c_str());
    return;
  }
  wn::ls::ConceptCacheStats before = session->CacheStats();
  size_t i = 0;
  for (auto _ : state) {
    auto mges = session->EnumerateMges(f->requests[i++ % f->requests.size()]);
    if (!mges.ok()) {
      state.SkipWithError(mges.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(mges.value().size());
  }
  ExportCacheCounters(state, before, session->CacheStats());
  state.counters["cache_resident_bytes"] =
      static_cast<double>(session->MemoryUsage().shared_cache_bytes);
}
BENCHMARK(BM_ConceptCacheSession_EnumerateTraffic)
    ->RangeMultiplier(2)
    ->Range(4, 16);

// The counterfactual: the same request stream served one-shot, each call
// on a fresh run-local cache island. Misses stay at their first-request
// level forever; the time gap against the session row above is what the
// shared tier amortizes.
void BM_ConceptCacheOneShot_EnumerateTraffic(benchmark::State& state) {
  auto f = MakeFixture(static_cast<int>(state.range(0)), 4, 8);
  if (!f.has_value()) {
    state.SkipWithError("fixture");
    return;
  }
  double shared = 0, local = 0, misses = 0;
  size_t i = 0;
  for (auto _ : state) {
    auto wni = wn::explain::MakeWhyNotInstance(
        f->scenario.instance.get(), f->scenario.stock_query,
        f->requests[i++ % f->requests.size()]);
    if (!wni.ok()) {
      state.SkipWithError(wni.status().ToString().c_str());
      return;
    }
    wn::explain::EnumerateStats stats;
    auto mges = wn::explain::EnumerateAllMges(wni.value(), {}, &stats);
    if (!mges.ok()) {
      state.SkipWithError(mges.status().ToString().c_str());
      return;
    }
    shared += static_cast<double>(stats.cache_shared_hits);
    local += static_cast<double>(stats.cache_local_hits);
    misses += static_cast<double>(stats.cache_misses);
    benchmark::DoNotOptimize(mges.value().size());
  }
  state.counters["cache_shared_hits"] =
      benchmark::Counter(shared, benchmark::Counter::kAvgIterations);
  state.counters["cache_local_hits"] =
      benchmark::Counter(local, benchmark::Counter::kAvgIterations);
  state.counters["cache_misses"] =
      benchmark::Counter(misses, benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_ConceptCacheOneShot_EnumerateTraffic)
    ->RangeMultiplier(2)
    ->Range(4, 16);

// Mixed-request reuse: WhyNot, EnumerateMges, and CheckMgeDerived against
// the same session share one published tier, so a lub computed by the
// incremental search is a hit for the enumeration's first wave.
void BM_ConceptCacheSession_MixedDerivedTraffic(benchmark::State& state) {
  auto f = MakeFixture(static_cast<int>(state.range(0)), 4, 6);
  if (!f.has_value()) {
    state.SkipWithError("fixture");
    return;
  }
  auto session = wn::explain::ExplainSession::Bind(
      f->scenario.instance.get(), f->scenario.stock_query);
  if (!session.ok()) {
    state.SkipWithError(session.status().ToString().c_str());
    return;
  }
  wn::ls::ConceptCacheStats before = session->CacheStats();
  size_t i = 0;
  for (auto _ : state) {
    const wn::Tuple& missing = f->requests[i++ % f->requests.size()];
    auto e = session->WhyNot(missing);
    if (!e.ok()) {
      state.SkipWithError(e.status().ToString().c_str());
      return;
    }
    auto mges = session->EnumerateMges(missing);
    if (!mges.ok()) {
      state.SkipWithError(mges.status().ToString().c_str());
      return;
    }
    auto check = session->CheckMgeDerived(missing, e.value());
    if (!check.ok()) {
      state.SkipWithError(check.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(check.value());
  }
  ExportCacheCounters(state, before, session->CacheStats());
}
BENCHMARK(BM_ConceptCacheSession_MixedDerivedTraffic)
    ->RangeMultiplier(2)
    ->Range(4, 16);

// Hit-path microbenchmark: LubAndEval on a fully published tier, the cost
// every steady-state lookup pays (one SortUnique + one sharded find).
void BM_ConceptCacheOverlay_PublishedHit(benchmark::State& state) {
  wn::rel::Schema schema;
  std::vector<std::string> attrs = {"a", "b", "c"};
  if (!schema.AddRelation("R", attrs).ok()) {
    state.SkipWithError("schema");
    return;
  }
  auto inst = wn::workload::RandomInstance(&schema, 256, 16, 7);
  if (!inst.ok()) {
    state.SkipWithError("fixture");
    return;
  }
  wn::rel::Instance im(std::move(inst).value());
  wn::ls::LubContext lub(&im);
  wn::ls::EvalCache eval(&im);
  wn::ls::ConceptCache cc(&im);
  std::vector<wn::Value> adom = im.ActiveDomain();
  std::vector<std::vector<wn::Value>> keys;
  for (size_t k = 0; k + 1 < adom.size() && keys.size() < 64; k += 2) {
    keys.push_back({adom[k], adom[k + 1]});
  }
  {
    wn::ls::ConceptCacheOverlay warm(&cc, /*with_selections=*/false, &lub,
                                     &eval);
    for (const auto& key : keys) {
      auto r = warm.LubAndEval(key);
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        return;
      }
    }
    cc.Publish(&warm);
  }
  wn::ls::ConceptCacheOverlay overlay(&cc, /*with_selections=*/false, &lub,
                                      &eval);
  size_t i = 0;
  for (auto _ : state) {
    auto r = overlay.LubAndEval(keys[i++ % keys.size()]);
    if (!r.ok()) {
      state.SkipWithError(r.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(r.value());
  }
  // Overlay counters fold into the shared cache at Publish; nothing is
  // pending here (every lookup hit), so this only merges the stats.
  cc.Publish(&overlay);
  wn::ls::ConceptCacheStats s = cc.stats();
  state.counters["cache_shared_hits"] = static_cast<double>(s.shared_hits);
  state.counters["cache_misses"] = static_cast<double>(s.misses);
}
BENCHMARK(BM_ConceptCacheOverlay_PublishedHit);

}  // namespace
