// Experiment E6-E11 (DESIGN.md): Table 1 — complexity of LS concept
// subsumption ⊑_S per integrity-constraint class.
//
//   UCQ-view def. (no comparisons)   NP-complete      -> exponential sweep
//   UCQ-view def. (with comparisons) ΠP2-complete     -> steeper exponential
//   nested UCQ-view def.             CONEXPTIME       -> doubly exponential
//                                                        expansion blowup
//   FDs                              PTIME            -> flat polynomial
//   IDs (selection-free LS)          PTIME            -> flat polynomial
//
// Expected shape: the PTIME rows stay near-linear as the sweep parameter
// grows; the views rows blow up exponentially in the number of view atoms
// in the concept / nesting depth.

#include <benchmark/benchmark.h>

#include "whynot/whynot.h"

namespace wn = whynot;
namespace ls = whynot::ls;
namespace rel = whynot::rel;

namespace {

rel::Atom MakeAtom(const std::string& r, const std::vector<rel::Term>& args) {
  rel::Atom a;
  a.relation = r;
  a.args = args;
  return a;
}

/// A views-only schema with `num_views` unary views over Cities, each with
/// `disjuncts` disjuncts, optionally with comparisons in the bodies.
rel::Schema ViewSchema(int num_views, int disjuncts, bool comparisons) {
  rel::Schema schema;
  (void)schema.AddRelation("Cities", {"name", "population", "continent"});
  for (int v = 0; v < num_views; ++v) {
    rel::UnionQuery def;
    for (int d = 0; d < disjuncts; ++d) {
      rel::ConjunctiveQuery cq;
      cq.head = {"x"};
      cq.atoms = {MakeAtom("Cities", {rel::Term::Var("x"), rel::Term::Var("y"),
                                      rel::Term::Var("w")})};
      if (comparisons) {
        cq.comparisons = {{"y", rel::CmpOp::kGe, wn::Value(1000 * (d + 1))},
                          {"y", rel::CmpOp::kLe, wn::Value(100000 * (d + 2))}};
      }
      def.disjuncts.push_back(std::move(cq));
    }
    (void)schema.AddView("V" + std::to_string(v), {"name"}, std::move(def));
  }
  return schema;
}

/// C1 = intersection of the first `k` views' projections; C2 = π_name.
void BM_Table1_ViewsNoComparisons(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  rel::Schema schema = ViewSchema(k, 2, /*comparisons=*/false);
  std::vector<ls::Conjunct> conjuncts;
  for (int v = 0; v < k; ++v) {
    conjuncts.push_back(ls::Conjunct::Projection("V" + std::to_string(v), 0));
  }
  ls::LsConcept c1(std::move(conjuncts));
  ls::LsConcept c2 = ls::LsConcept::Projection("Cities", 0);
  for (auto _ : state) {
    auto r = ls::SubsumedSViews(c1, c2, schema);
    if (!r.ok() || !r.value()) state.SkipWithError("unexpected verdict");
  }
  state.counters["view_atoms"] = k;
}
BENCHMARK(BM_Table1_ViewsNoComparisons)->DenseRange(1, 6);

void BM_Table1_ViewsWithComparisons(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  rel::Schema schema = ViewSchema(k, 2, /*comparisons=*/true);
  std::vector<ls::Conjunct> conjuncts;
  for (int v = 0; v < k; ++v) {
    conjuncts.push_back(ls::Conjunct::Projection("V" + std::to_string(v), 0));
  }
  ls::LsConcept c1(std::move(conjuncts));
  ls::LsConcept c2 = ls::LsConcept::Projection("Cities", 0);
  ls::SchemaSubsumptionOptions options;
  options.max_region_combinations = 50000000;
  for (auto _ : state) {
    auto r = ls::SubsumedSViews(c1, c2, schema, options);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
  }
  state.counters["view_atoms"] = k;
}
BENCHMARK(BM_Table1_ViewsWithComparisons)->DenseRange(1, 4);

/// Nested views: a chain of depth d where each view has 2 disjuncts, one
/// of them joining the previous view with a base atom — expansion is 2^d
/// disjuncts (the CONEXPTIME row's engine). (Nesting the previous view
/// *twice* in a disjunct would square the count per level — doubly
/// exponential — and overflow any cap by depth 5.)
void BM_Table1_NestedViews(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  rel::Schema schema;
  (void)schema.AddRelation("B", {"x"});
  std::string prev = "B";
  for (int i = 0; i < depth; ++i) {
    rel::UnionQuery def;
    for (int d = 0; d < 2; ++d) {
      rel::ConjunctiveQuery cq;
      cq.head = {"x"};
      cq.atoms = {MakeAtom(prev, {rel::Term::Var("x")})};
      if (d == 1) cq.atoms.push_back(MakeAtom("B", {rel::Term::Var("y")}));
      def.disjuncts.push_back(std::move(cq));
    }
    std::string name = "N" + std::to_string(i);
    (void)schema.AddView(name, {"x"}, std::move(def));
    prev = name;
  }
  ls::LsConcept c1 = ls::LsConcept::Projection(prev, 0);
  ls::LsConcept c2 = ls::LsConcept::Projection("B", 0);
  ls::SchemaSubsumptionOptions options;
  options.max_expansion_disjuncts = 1u << 20;
  options.max_expansion_atoms = 1u << 20;
  for (auto _ : state) {
    auto r = ls::SubsumedSViews(c1, c2, schema, options);
    if (!r.ok() || !r.value()) state.SkipWithError("unexpected verdict");
  }
  state.counters["nesting_depth"] = depth;
}
BENCHMARK(BM_Table1_NestedViews)->DenseRange(1, 9);

/// FDs row (PTIME): the concept size grows; the chase stays polynomial.
void BM_Table1_Fds(benchmark::State& state) {
  int k = static_cast<int>(state.range(0));
  rel::Schema schema;
  (void)schema.AddRelation("R", {"key", "a", "b", "c"});
  (void)schema.AddFd({"R", {0}, {1, 2, 3}});
  std::vector<ls::Conjunct> conjuncts;
  for (int i = 0; i < k; ++i) {
    conjuncts.push_back(ls::Conjunct::Projection(
        "R", 0, {{1, rel::CmpOp::kGe, wn::Value(i)}}));
  }
  ls::LsConcept c1(std::move(conjuncts));
  ls::LsConcept c2 = ls::LsConcept::Projection(
      "R", 0, {{1, rel::CmpOp::kGe, wn::Value(0)}});
  for (auto _ : state) {
    auto r = ls::SubsumedSFds(c1, c2, schema);
    if (!r.ok() || !r.value()) state.SkipWithError("unexpected verdict");
  }
  state.counters["conjuncts"] = k;
}
BENCHMARK(BM_Table1_Fds)->RangeMultiplier(2)->Range(2, 64);

/// IDs row (selection-free, PTIME): reachability over an ID chain.
void BM_Table1_IdsSelectionFree(benchmark::State& state) {
  int chain = static_cast<int>(state.range(0));
  rel::Schema schema;
  for (int i = 0; i <= chain; ++i) {
    (void)schema.AddRelation("R" + std::to_string(i), {"a", "b"});
  }
  for (int i = 0; i < chain; ++i) {
    (void)schema.AddId({"R" + std::to_string(i), {0},
                        "R" + std::to_string(i + 1), {0}});
  }
  ls::LsConcept c1 = ls::LsConcept::Projection("R0", 0);
  ls::LsConcept c2 =
      ls::LsConcept::Projection("R" + std::to_string(chain), 0);
  for (auto _ : state) {
    auto r = ls::SubsumedSIdsSelectionFree(c1, c2, schema);
    if (!r.ok() || !r.value()) state.SkipWithError("unexpected verdict");
  }
  state.counters["chain_length"] = chain;
}
BENCHMARK(BM_Table1_IdsSelectionFree)->RangeMultiplier(2)->Range(2, 128);

}  // namespace
