// Experiment E25 (DESIGN.md): Section 7 suggests studying *why*
// explanations (the dual question — why IS a tuple among the answers) in
// the ontology framework. This benchmark measures both implementations:
//
//   * the Algorithm-1-style enumeration over an external finite ontology
//     (AllMostGeneralWhyExplanations) — exponential in arity like
//     Theorem 5.2;
//   * the Algorithm-2-style greedy w.r.t. the derived ontology OI
//     (IncrementalWhySearch) — answer-bounded polynomial for selection-free
//     LS, mirroring Theorem 5.3 for the dual condition.

#include <benchmark/benchmark.h>

#include "whynot/whynot.h"

namespace wn = whynot;

namespace {

struct Fixture {
  wn::workload::ScaledWorld world;
  wn::explain::WhyInstance wi;
};

std::unique_ptr<Fixture> MakeFixture(int cities_per_country) {
  auto world = wn::workload::MakeScaledWorld(2, 2, cities_per_country);
  if (!world.ok()) return nullptr;
  auto f = std::make_unique<Fixture>();
  f->world = std::move(world).value();
  // Any two-hop pair is a present answer; find one.
  auto answers = wn::rel::Evaluate(wn::workload::ConnectedViaQuery(),
                                   *f->world.instance);
  if (!answers.ok() || answers.value().empty()) return nullptr;
  auto wi = wn::explain::MakeWhyInstance(f->world.instance.get(),
                                         wn::workload::ConnectedViaQuery(),
                                         answers.value().front());
  if (!wi.ok()) return nullptr;
  f->wi = std::move(wi).value();
  return f;
}

// Derived-ontology greedy (dual Algorithm 2): instance-size sweep.
void BM_Why_IncrementalDerived(benchmark::State& state) {
  auto f = MakeFixture(static_cast<int>(state.range(0)));
  if (f == nullptr) {
    state.SkipWithError("fixture");
    return;
  }
  for (auto _ : state) {
    auto e = wn::explain::IncrementalWhySearch(f->wi);
    if (!e.ok()) {
      state.SkipWithError(e.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(e);
  }
  state.counters["facts"] = static_cast<double>(f->world.instance->NumFacts());
  state.counters["answers"] = static_cast<double>(f->wi.answers.size());
}
BENCHMARK(BM_Why_IncrementalDerived)->RangeMultiplier(2)->Range(4, 16);

// External-ontology enumeration (dual Algorithm 1): ontology-size sweep.
void BM_Why_ExhaustiveExternal(benchmark::State& state) {
  auto f = MakeFixture(static_cast<int>(state.range(0)));
  if (f == nullptr) {
    state.SkipWithError("fixture");
    return;
  }
  wn::onto::BoundOntology bound(f->world.ontology.get(),
                                f->world.instance.get());
  size_t num = 0;
  for (auto _ : state) {
    auto all =
        wn::explain::AllMostGeneralWhyExplanations(&bound, f->wi);
    if (!all.ok()) {
      state.SkipWithError(all.status().ToString().c_str());
      return;
    }
    num = all.value().size();
    benchmark::DoNotOptimize(all);
  }
  state.counters["concepts"] =
      static_cast<double>(f->world.ontology->NumConcepts());
  state.counters["why_mges"] = static_cast<double>(num);
}
BENCHMARK(BM_Why_ExhaustiveExternal)->RangeMultiplier(2)->Range(4, 16);

}  // namespace
