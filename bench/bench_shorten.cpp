// Experiment E19 (DESIGN.md): Proposition 6.2 — irredundant shortening runs
// in polynomial time — versus the NP-hard exact minimization of
// Propositions 6.1/6.3 (exponential subset search).
//
// Expected shape: MakeIrredundant grows polynomially in the conjunct count;
// MinimizeEquivalent blows up (or hits its node cap) much earlier.

#include <benchmark/benchmark.h>

#include "whynot/whynot.h"

namespace wn = whynot;
namespace ls = whynot::ls;

namespace {

struct Fixture {
  std::unique_ptr<wn::rel::Schema> schema;
  std::unique_ptr<wn::rel::Instance> instance;
  ls::LsConcept bloated;
};

/// A concept with `k` conjuncts, most of them redundant on the instance.
std::unique_ptr<Fixture> MakeFixture(int k) {
  auto f = std::make_unique<Fixture>();
  f->schema = std::make_unique<wn::rel::Schema>();
  if (!f->schema->AddRelation("R", {"a", "b"}).ok()) return nullptr;
  auto instance = wn::workload::RandomInstance(f->schema.get(), 20, 12, 17);
  if (!instance.ok()) return nullptr;
  f->instance =
      std::make_unique<wn::rel::Instance>(std::move(instance).value());
  std::vector<ls::Conjunct> conjuncts;
  conjuncts.push_back(ls::Conjunct::Projection("R", 0));
  for (int i = 0; i < k; ++i) {
    // Increasingly weak selections: all but the tightest are redundant.
    conjuncts.push_back(ls::Conjunct::Projection(
        "R", 0, {{1, wn::rel::CmpOp::kGe,
                  wn::Value(static_cast<int64_t>(i % 4))}}));
  }
  f->bloated = ls::LsConcept(std::move(conjuncts));
  return f;
}

void BM_Shorten_IrredundantConjunctSweep(benchmark::State& state) {
  auto f = MakeFixture(static_cast<int>(state.range(0)));
  if (f == nullptr) {
    state.SkipWithError("fixture");
    return;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        wn::explain::MakeIrredundant(f->bloated, *f->instance));
  }
  state.counters["conjuncts"] =
      static_cast<double>(f->bloated.conjuncts().size());
}
BENCHMARK(BM_Shorten_IrredundantConjunctSweep)
    ->RangeMultiplier(2)
    ->Range(2, 64);

void BM_Shorten_ExactMinimization(benchmark::State& state) {
  auto f = MakeFixture(static_cast<int>(state.range(0)));
  if (f == nullptr) {
    state.SkipWithError("fixture");
    return;
  }
  wn::explain::MinimizeOptions options;
  options.with_selections = false;
  for (auto _ : state) {
    auto r = wn::explain::MinimizeEquivalent(f->bloated, *f->instance,
                                             options);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["conjuncts"] =
      static_cast<double>(f->bloated.conjuncts().size());
}
BENCHMARK(BM_Shorten_ExactMinimization)->RangeMultiplier(2)->Range(2, 16);

}  // namespace
