// Experiment E13 (DESIGN.md): Proposition 4.2 — the number of distinct
// concepts in LminS[K] is polynomial, in selection-free/intersection-free
// LS[K] single exponential, and in full LS[K] double exponential.
//
// The counts themselves are printed as counters (log2 for the huge ones);
// the timed body is the enumeration of the polynomial fragment, which must
// stay fast.

#include <benchmark/benchmark.h>

#include "whynot/whynot.h"

namespace wn = whynot;

namespace {

void BM_ConceptCount_Proposition42(benchmark::State& state) {
  auto schema = wn::workload::CitiesDataSchema();
  if (!schema.ok()) {
    state.SkipWithError("schema");
    return;
  }
  size_t k = static_cast<size_t>(state.range(0));
  wn::ls::ConceptCounts counts = wn::ls::CountConcepts(schema.value(), k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wn::ls::CountConcepts(schema.value(), k));
  }
  state.counters["K"] = static_cast<double>(k);
  state.counters["minimal"] = static_cast<double>(counts.minimal.exact);
  state.counters["selection_free_log2"] = counts.selection_free.log2;
  state.counters["intersection_free_log2"] = counts.intersection_free.log2;
  state.counters["full_log2"] = counts.full.log2;
}
BENCHMARK(BM_ConceptCount_Proposition42)->RangeMultiplier(2)->Range(4, 64);

void BM_ConceptCount_MinimalEnumeration(benchmark::State& state) {
  auto schema = wn::workload::CitiesDataSchema();
  auto instance = wn::workload::CitiesInstance(&schema.value());
  if (!instance.ok()) {
    state.SkipWithError("instance");
    return;
  }
  size_t k = static_cast<size_t>(state.range(0));
  std::vector<wn::Value> constants;
  for (size_t i = 0; i < k; ++i) {
    constants.push_back(wn::Value(static_cast<int64_t>(i)));
  }
  for (auto _ : state) {
    auto r = wn::ls::EnumerateConjunctConcepts(
        instance.value(), constants, wn::ls::Fragment::kMinimal, 1u << 20);
    if (!r.ok()) state.SkipWithError("enumeration");
    benchmark::DoNotOptimize(r);
  }
  state.counters["K"] = static_cast<double>(k);
}
BENCHMARK(BM_ConceptCount_MinimalEnumeration)
    ->RangeMultiplier(4)
    ->Range(4, 1024);

}  // namespace
