// Experiment E17 (DESIGN.md): Lemmas 5.1 and 5.2 — lub is PTIME in
// selection-free LS; lubσ is exponential in the schema arity (canonical
// boxes) and polynomial for bounded arity.
//
// Expected shape: selection-free lub stays linear-ish in rows; the box
// construction grows polynomially in rows at fixed arity and
// multiplicatively per added attribute.

#include <benchmark/benchmark.h>

#include "whynot/whynot.h"

namespace wn = whynot;
namespace rel = whynot::rel;

namespace {

std::unique_ptr<rel::Instance> MakeInstance(rel::Schema* schema, int arity,
                                            int rows, int domain) {
  std::vector<std::string> attrs;
  for (int a = 0; a < arity; ++a) attrs.push_back("a" + std::to_string(a));
  if (!schema->AddRelation("R", attrs).ok()) return nullptr;
  auto instance = wn::workload::RandomInstance(schema, rows, domain, 3);
  if (!instance.ok()) return nullptr;
  return std::make_unique<rel::Instance>(std::move(instance).value());
}

void BM_Lub_SelectionFreeRowSweep(benchmark::State& state) {
  rel::Schema schema;
  auto instance =
      MakeInstance(&schema, 3, static_cast<int>(state.range(0)), 20);
  if (instance == nullptr) {
    state.SkipWithError("fixture");
    return;
  }
  wn::ls::LubContext ctx(instance.get());
  std::vector<wn::Value> adom = instance->ActiveDomain();
  std::vector<wn::Value> x = {adom[0], adom[adom.size() / 2], adom.back()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.LubSelectionFree(x));
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_Lub_SelectionFreeRowSweep)->RangeMultiplier(4)->Range(16, 1024);

void BM_Lub_WithSelectionsRowSweepArity2(benchmark::State& state) {
  rel::Schema schema;
  auto instance =
      MakeInstance(&schema, 2, static_cast<int>(state.range(0)), 12);
  if (instance == nullptr) {
    state.SkipWithError("fixture");
    return;
  }
  std::vector<wn::Value> adom = instance->ActiveDomain();
  std::vector<wn::Value> x = {adom[0], adom.back()};
  size_t boxes = 0;
  for (auto _ : state) {
    wn::ls::LubContext ctx(instance.get());  // rebuild boxes each time
    auto r = ctx.LubWithSelections(x);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    boxes = ctx.NumBoxes("R");
    benchmark::DoNotOptimize(r);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
  state.counters["boxes"] = static_cast<double>(boxes);
}
BENCHMARK(BM_Lub_WithSelectionsRowSweepArity2)
    ->RangeMultiplier(2)
    ->Range(8, 64);

void BM_Lub_WithSelectionsAritySweep(benchmark::State& state) {
  rel::Schema schema;
  auto instance =
      MakeInstance(&schema, static_cast<int>(state.range(0)), 10, 6);
  if (instance == nullptr) {
    state.SkipWithError("fixture");
    return;
  }
  std::vector<wn::Value> adom = instance->ActiveDomain();
  std::vector<wn::Value> x = {adom[0], adom.back()};
  wn::ls::LubOptions options;
  options.max_boxes_per_relation = 100000000;
  size_t boxes = 0;
  for (auto _ : state) {
    wn::ls::LubContext ctx(instance.get(), options);
    auto r = ctx.LubWithSelections(x);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    boxes = ctx.NumBoxes("R");
    benchmark::DoNotOptimize(r);
  }
  state.counters["arity"] = static_cast<double>(state.range(0));
  state.counters["boxes"] = static_cast<double>(boxes);
}
BENCHMARK(BM_Lub_WithSelectionsAritySweep)->DenseRange(1, 4);

// PR 10: the run-length regime. Duplicate-heavy columns (many rows over a
// small domain) make every distinct value a long run, so the canonical-box
// recursion narrows whole runs at a time — the case the columnar
// run-length BuildBoxes targets, in contrast to the near-unique columns of
// the sweeps above. Rebuilds the context each iteration so the box
// construction itself is what's timed.
void BM_Lub_BuildBoxesDenseDuplicates(benchmark::State& state) {
  rel::Schema schema;
  auto instance =
      MakeInstance(&schema, 3, static_cast<int>(state.range(0)), 6);
  if (instance == nullptr) {
    state.SkipWithError("fixture");
    return;
  }
  std::vector<wn::Value> adom = instance->ActiveDomain();
  std::vector<wn::Value> x = {adom[0], adom.back()};
  size_t boxes = 0;
  for (auto _ : state) {
    wn::ls::LubContext ctx(instance.get());
    auto r = ctx.LubWithSelections(x);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    boxes = ctx.NumBoxes("R");
    benchmark::DoNotOptimize(r);
  }
  state.counters["rows"] = static_cast<double>(state.range(0));
  state.counters["boxes"] = static_cast<double>(boxes);
}
BENCHMARK(BM_Lub_BuildBoxesDenseDuplicates)
    ->RangeMultiplier(4)
    ->Range(64, 1024);

}  // namespace
