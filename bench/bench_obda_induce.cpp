// Experiment E12 (DESIGN.md): Theorems 4.1 and 4.2 — DL-LiteR subsumption
// is PTIME, and the S-ontology induced by an OBDA specification is
// computable in polynomial time (reasoner closure + mapping saturation).
//
// Expected shape: polynomial growth in the TBox size for the reasoner
// construction, and in instance size for the saturation.

#include <benchmark/benchmark.h>

#include "whynot/whynot.h"

namespace wn = whynot;
namespace dl = whynot::dl;

namespace {

void BM_Obda_ReasonerConstruction(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  dl::TBox tbox = wn::workload::RandomTBox(n, n / 2, 3 * n, /*seed=*/5);
  for (auto _ : state) {
    dl::Reasoner reasoner(&tbox);
    benchmark::DoNotOptimize(reasoner.Universe().size());
  }
  state.counters["atomic_concepts"] = n;
  state.counters["axioms"] = 3 * n;
}
BENCHMARK(BM_Obda_ReasonerConstruction)->RangeMultiplier(2)->Range(4, 64);

void BM_Obda_SubsumptionQueries(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  dl::TBox tbox = wn::workload::RandomTBox(n, n / 2, 3 * n, /*seed=*/5);
  dl::Reasoner reasoner(&tbox);
  const auto& universe = reasoner.Universe();
  for (auto _ : state) {
    size_t positive = 0;
    for (const dl::BasicConcept& a : universe) {
      for (const dl::BasicConcept& b : universe) {
        positive += reasoner.Subsumed(a, b) ? 1 : 0;
      }
    }
    benchmark::DoNotOptimize(positive);
  }
  state.counters["universe"] = static_cast<double>(universe.size());
}
BENCHMARK(BM_Obda_SubsumptionQueries)->RangeMultiplier(2)->Range(4, 32);

void BM_Obda_SaturationInstanceSweep(benchmark::State& state) {
  auto schema = wn::workload::CitiesDataSchema();
  if (!schema.ok()) {
    state.SkipWithError("schema");
    return;
  }
  // Scale the Figure 2 instance by replication with renamed cities.
  wn::rel::Instance instance(&schema.value());
  int copies = static_cast<int>(state.range(0));
  for (int c = 0; c < copies; ++c) {
    std::string suffix = "#" + std::to_string(c);
    (void)instance.AddFact("Cities", {"Amsterdam" + suffix, 779808 + c,
                                      "Netherlands" + suffix, "Europe"});
    (void)instance.AddFact("Cities", {"New York" + suffix, 8337000 + c,
                                      "USA" + suffix, "N.America"});
    (void)instance.AddFact(
        "Train-Connections",
        {"Amsterdam" + suffix, c > 0 ? "Amsterdam#" + std::to_string(c - 1)
                                     : "Amsterdam" + suffix});
  }
  wn::obda::ObdaSpec spec(wn::workload::CitiesTBox(), &schema.value(),
                          wn::workload::CitiesMappings());
  for (auto _ : state) {
    auto sat = spec.Saturate(instance);
    if (!sat.ok()) state.SkipWithError(sat.status().ToString().c_str());
    benchmark::DoNotOptimize(sat);
  }
  state.counters["facts"] = static_cast<double>(instance.NumFacts());
}
BENCHMARK(BM_Obda_SaturationInstanceSweep)
    ->RangeMultiplier(2)
    ->Range(8, 256);

void BM_Obda_InducedOntologyEndToEnd(benchmark::State& state) {
  auto schema = wn::workload::CitiesDataSchema();
  auto instance = wn::workload::CitiesInstance(&schema.value());
  if (!instance.ok()) {
    state.SkipWithError("instance");
    return;
  }
  wn::obda::ObdaSpec spec(wn::workload::CitiesTBox(), &schema.value(),
                          wn::workload::CitiesMappings());
  auto wni = wn::explain::MakeWhyNotInstance(
      &instance.value(), wn::workload::ConnectedViaQuery(),
      {"Amsterdam", "New York"});
  if (!wni.ok()) {
    state.SkipWithError("wni");
    return;
  }
  for (auto _ : state) {
    wn::obda::ObdaInducedOntology ontology(&spec);
    wn::onto::BoundOntology bound(&ontology, &instance.value());
    auto mges = wn::explain::ExhaustiveSearchAllMge(&bound, wni.value());
    if (!mges.ok()) state.SkipWithError("search");
    benchmark::DoNotOptimize(mges);
  }
}
BENCHMARK(BM_Obda_InducedOntologyEndToEnd);

}  // namespace
