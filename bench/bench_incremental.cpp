// Experiment E16 (DESIGN.md): Theorem 5.3 — INCREMENTAL SEARCH with
// selection-free lub runs in polynomial time in the instance size, and it
// beats the materialize-OI[K]-then-Algorithm-1 baseline (Proposition 5.1's
// route) by a widening margin.
//
// Expected shape: low-polynomial growth for Algorithm 2; the materialized
// baseline blows up (or hits its concept cap) quickly.

#include <benchmark/benchmark.h>

#include "whynot/whynot.h"

namespace wn = whynot;

namespace {

struct Fixture {
  wn::workload::ScaledWorld world;
  wn::explain::WhyNotInstance wni;
};

std::unique_ptr<Fixture> MakeFixture(int cities_per_country) {
  auto world = wn::workload::MakeScaledWorld(2, 2, cities_per_country);
  if (!world.ok()) return nullptr;
  auto f = std::make_unique<Fixture>();
  f->world = std::move(world).value();
  auto wni = wn::explain::MakeWhyNotInstance(
      f->world.instance.get(), wn::workload::ConnectedViaQuery(),
      f->world.missing_pair);
  if (!wni.ok()) return nullptr;
  f->wni = std::move(wni).value();
  return f;
}

void BM_Incremental_InstanceSizeSweep(benchmark::State& state) {
  auto f = MakeFixture(static_cast<int>(state.range(0)));
  if (f == nullptr) {
    state.SkipWithError("fixture");
    return;
  }
  wn::explain::IncrementalOptions options;
  options.with_selections = false;
  for (auto _ : state) {
    auto r = wn::explain::IncrementalSearch(f->wni, options);
    if (!r.ok()) state.SkipWithError(r.status().ToString().c_str());
    benchmark::DoNotOptimize(r);
  }
  state.counters["facts"] = static_cast<double>(f->world.instance->NumFacts());
}
BENCHMARK(BM_Incremental_InstanceSizeSweep)
    ->RangeMultiplier(2)
    ->Range(4, 64);

void BM_Incremental_VsMaterializedBaseline(benchmark::State& state) {
  auto f = MakeFixture(static_cast<int>(state.range(0)));
  if (f == nullptr) {
    state.SkipWithError("fixture");
    return;
  }
  bool baseline = state.range(1) == 1;
  wn::explain::IncrementalOptions incremental_options;
  wn::explain::DerivedMgeOptions derived_options;
  derived_options.fragment = wn::ls::Fragment::kSelectionFree;
  derived_options.mode = wn::ls::SubsumptionMode::kInstance;
  derived_options.max_concepts = 100000;
  for (auto _ : state) {
    if (baseline) {
      auto r = wn::explain::ComputeAllMgeDerived(f->wni, derived_options);
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        break;
      }
      benchmark::DoNotOptimize(r);
    } else {
      auto r = wn::explain::IncrementalSearch(f->wni, incremental_options);
      if (!r.ok()) {
        state.SkipWithError(r.status().ToString().c_str());
        break;
      }
      benchmark::DoNotOptimize(r);
    }
  }
  state.SetLabel(baseline ? "materialize OI[K] + Algorithm 1"
                          : "Algorithm 2 (incremental)");
  state.counters["facts"] = static_cast<double>(f->world.instance->NumFacts());
}
BENCHMARK(BM_Incremental_VsMaterializedBaseline)
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({8, 0})
    ->Args({8, 1})
    ->Args({16, 0})
    ->Args({16, 1});

}  // namespace
